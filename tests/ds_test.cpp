// Deferrable-server extension tests: the budget-enforcing server execution
// model, the delay-bound admission analysis, and the end-to-end DS mode of
// the middleware.
#include <gtest/gtest.h>

#include <memory>

#include "core/runtime.h"
#include "sched/ds_admission.h"
#include "sim/deferrable_server.h"
#include "test_helpers.h"
#include "workload/arrival.h"
#include "workload/generator.h"

namespace rtcm {
namespace {

using rtcm::testing::make_aperiodic;
using rtcm::testing::make_periodic;

// --- sim::DeferrableServer ---------------------------------------------------

struct ServerFixture : ::testing::Test {
  ServerFixture() : cpu(sim, ProcessorId(0)) {
    sim::DeferrableServerParams params;
    params.budget = Duration::milliseconds(20);
    params.period = Duration::milliseconds(100);
    server = std::make_unique<sim::DeferrableServer>(sim, cpu, params);
    server->start();
  }

  sim::Simulator sim;
  sim::Processor cpu;
  std::unique_ptr<sim::DeferrableServer> server;
};

TEST_F(ServerFixture, JobWithinBudgetRunsImmediately) {
  Time done;
  server->submit(1, Duration::milliseconds(10),
                 [&](std::uint64_t) { done = sim.now(); });
  // Observe before the t=100ms replenishment restores the budget.
  sim.run_until(Time(Duration::milliseconds(50).usec()));
  EXPECT_EQ(done, Time(Duration::milliseconds(10).usec()));
  EXPECT_EQ(server->stats().jobs_served, 1u);
  EXPECT_EQ(server->stats().budget_exhaustions, 0u);
  EXPECT_EQ(server->budget_remaining(), Duration::milliseconds(10));
  // After the replenishment the budget is full again (deferrable).
  sim.run_until(Time(Duration::milliseconds(200).usec()));
  EXPECT_EQ(server->budget_remaining(), Duration::milliseconds(20));
}

TEST_F(ServerFixture, JobLargerThanBudgetSpansReplenishments) {
  // 50 ms of work through a 20 ms/100 ms server: 20 ms at t=0, 20 ms after
  // the t=100 replenishment, 10 ms after t=200 -> completes at 210 ms.
  Time done;
  server->submit(1, Duration::milliseconds(50),
                 [&](std::uint64_t) { done = sim.now(); });
  sim.run_until(Time(Duration::milliseconds(400).usec()));
  EXPECT_EQ(done, Time(Duration::milliseconds(210).usec()));
  EXPECT_EQ(server->stats().budget_exhaustions, 2u);
  EXPECT_GE(server->stats().chunks_dispatched, 3u);
}

TEST_F(ServerFixture, BudgetRetainedWhileIdleDeferrable) {
  // Nothing happens until t=150; the server retained its full budget, so a
  // 20 ms job completes at 170 ms without waiting for t=200.
  Time done;
  sim.schedule_at(Time(Duration::milliseconds(150).usec()), [&] {
    server->submit(1, Duration::milliseconds(20),
                   [&](std::uint64_t) { done = sim.now(); });
  });
  sim.run_until(Time(Duration::milliseconds(400).usec()));
  EXPECT_EQ(done, Time(Duration::milliseconds(170).usec()));
}

TEST_F(ServerFixture, FifoAcrossJobs) {
  std::vector<std::uint64_t> order;
  server->submit(1, Duration::milliseconds(15),
                 [&](std::uint64_t id) { order.push_back(id); });
  server->submit(2, Duration::milliseconds(15),
                 [&](std::uint64_t id) { order.push_back(id); });
  sim.run_until(Time(Duration::milliseconds(500).usec()));
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2}));
  // Job 1: 15 ms of the 20 ms budget; job 2 gets 5 ms, then waits.
  EXPECT_EQ(server->stats().budget_exhaustions, 1u);
}

TEST_F(ServerFixture, ServedWorkPreemptsPeriodicWork) {
  // A long low-priority (EDMS level 3) periodic job occupies the CPU; a
  // served aperiodic job preempts it immediately.
  Time periodic_done;
  Time served_done;
  cpu.submit({7, Priority(3), Duration::milliseconds(60),
              [&](std::uint64_t) { periodic_done = sim.now(); }});
  sim.schedule_at(Time(Duration::milliseconds(10).usec()), [&] {
    server->submit(1, Duration::milliseconds(10),
                   [&](std::uint64_t) { served_done = sim.now(); });
  });
  sim.run_until(Time(Duration::milliseconds(500).usec()));
  EXPECT_EQ(served_done, Time(Duration::milliseconds(20).usec()));
  EXPECT_EQ(periodic_done, Time(Duration::milliseconds(70).usec()));
  EXPECT_EQ(cpu.stats().preemptions, 1u);
}

TEST_F(ServerFixture, ReplenishmentsAreCounted) {
  sim.run_until(Time(Duration::milliseconds(550).usec()));
  EXPECT_EQ(server->stats().replenishments, 5u);
}

TEST_F(ServerFixture, LowerIdArrivingMidChunkServedBeforeUnfinishedWork) {
  // Admission-order regression test: id 10 starts a 20 ms chunk of its
  // 30 ms demand; id 5 arrives mid-chunk.  After the budget exhaustion,
  // id 5 must be served before id 10's remainder — otherwise id 5's delay
  // bound (computed without id 10's work) would be violated.
  std::vector<std::pair<std::uint64_t, std::int64_t>> completions;
  auto record = [&](std::uint64_t id) {
    completions.push_back({id, sim.now().usec()});
  };
  server->submit(10, Duration::milliseconds(30), record);
  sim.schedule_at(Time(Duration::milliseconds(5).usec()), [&] {
    server->submit(5, Duration::milliseconds(10), record);
  });
  sim.run_until(Time(Duration::milliseconds(300).usec()));
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0].first, 5u);
  EXPECT_EQ(completions[0].second, 110000);  // replenish at 100, 10 ms run
  EXPECT_EQ(completions[1].first, 10u);
  EXPECT_EQ(completions[1].second, 120000);  // remaining 10 ms after id 5
}

TEST_F(ServerFixture, ReplenishmentDuringChunkGrantsBackToBackBudget) {
  // Budget is committed at dispatch: a chunk straddling a replenishment
  // leaves the fresh budget fully usable right after it completes
  // (back-to-back).  Accounting at completion would void it and delay the
  // remainder by a whole period.
  Time done;
  sim.schedule_at(Time(Duration::milliseconds(90).usec()), [&] {
    server->submit(1, Duration::milliseconds(40),
                   [&](std::uint64_t) { done = sim.now(); });
  });
  sim.run_until(Time(Duration::milliseconds(400).usec()));
  // Chunk 1: [90, 110] (replenish at 100); chunk 2: [110, 130].
  EXPECT_EQ(done, Time(Duration::milliseconds(130).usec()));
}

// --- sched::DsAdmission ------------------------------------------------------

sched::DsServerConfig test_config() {
  sched::DsServerConfig config;
  config.budget = Duration::milliseconds(25);
  config.period = Duration::milliseconds(100);
  return config;
}

TEST(DsAdmissionTest, ConfigDerivedQuantities) {
  const auto config = test_config();
  EXPECT_DOUBLE_EQ(config.utilization(), 0.25);
  EXPECT_DOUBLE_EQ(config.periodic_interference(), 0.5);
  EXPECT_EQ(config.max_latency(), Duration::milliseconds(75));
}

TEST(DsAdmissionTest, DelayBoundOnEmptyServer) {
  sched::DsAdmission admission(test_config());
  // One 10 ms stage: (P-B) + C*P/B = 75ms + 40ms = 115 ms.
  const auto task = make_aperiodic(0, Duration::milliseconds(500),
                                   {{0, 10000}});
  EXPECT_EQ(admission.delay_bound(task, {ProcessorId(0)}),
            Duration::milliseconds(115));
  EXPECT_TRUE(admission.admissible(task, {ProcessorId(0)}));
}

TEST(DsAdmissionTest, TightDeadlineRejected) {
  sched::DsAdmission admission(test_config());
  const auto task = make_aperiodic(0, Duration::milliseconds(114),
                                   {{0, 10000}});
  EXPECT_FALSE(admission.admissible(task, {ProcessorId(0)}));
}

TEST(DsAdmissionTest, BacklogRaisesTheBound) {
  sched::DsAdmission admission(test_config());
  const auto first = make_aperiodic(0, Duration::seconds(2), {{0, 10000}});
  const auto handles = admission.add_backlog(first, {ProcessorId(0)});
  EXPECT_EQ(admission.backlog(ProcessorId(0)), Duration::milliseconds(10));

  const auto second = make_aperiodic(1, Duration::milliseconds(500),
                                     {{0, 10000}});
  // 75ms + (10ms + 10ms) * 4 = 155 ms.
  EXPECT_EQ(admission.delay_bound(second, {ProcessorId(0)}),
            Duration::milliseconds(155));

  // Removing the backlog restores the empty-server bound.
  EXPECT_TRUE(admission.remove_backlog(handles[0]));
  EXPECT_FALSE(admission.remove_backlog(handles[0]));  // idempotent
  EXPECT_EQ(admission.delay_bound(second, {ProcessorId(0)}),
            Duration::milliseconds(115));
}

TEST(DsAdmissionTest, MultiHopSumsPerStage) {
  sched::DsAdmission admission(test_config());
  const auto task = make_aperiodic(0, Duration::seconds(2),
                                   {{0, 10000}, {1, 5000}});
  // (75 + 40) + (75 + 20) = 210 ms.
  EXPECT_EQ(admission.delay_bound(task, {ProcessorId(0), ProcessorId(1)}),
            Duration::milliseconds(210));
}

// --- End-to-end DS mode ------------------------------------------------------

std::unique_ptr<core::SystemRuntime> make_ds_runtime(
    sched::TaskSet tasks, const std::string& combo = "J_T_N",
    Duration budget = Duration::milliseconds(25)) {
  core::SystemConfig config;
  config.strategies = core::StrategyCombination::parse(combo).value();
  config.comm_latency = Duration::zero();
  config.analysis = core::AperiodicAnalysis::kDeferrableServer;
  config.ds_server.budget = budget;
  config.ds_server.period = Duration::milliseconds(100);
  auto runtime =
      std::make_unique<core::SystemRuntime>(config, std::move(tasks));
  const Status s = runtime->assemble();
  EXPECT_TRUE(s.is_ok()) << s.message();
  return runtime;
}

TEST(DsRuntimeTest, ServersDeployedPerApplicationProcessor) {
  sched::TaskSet tasks;
  ASSERT_TRUE(tasks.add(make_aperiodic(0, Duration::seconds(1),
                                       {{0, 10000}, {1, 10000}}))
                  .is_ok());
  auto rt = make_ds_runtime(std::move(tasks));
  EXPECT_NE(rt->deferrable_server(ProcessorId(0)), nullptr);
  EXPECT_NE(rt->deferrable_server(ProcessorId(1)), nullptr);
  EXPECT_EQ(rt->deferrable_server(rt->task_manager()), nullptr);
  EXPECT_EQ(rt->admission_control()->analysis(),
            core::AperiodicAnalysis::kDeferrableServer);
  ASSERT_NE(rt->admission_control()->ds_admission(), nullptr);
}

TEST(DsRuntimeTest, AperiodicJobServedWithinDelayBound) {
  sched::TaskSet tasks;
  ASSERT_TRUE(
      tasks.add(make_aperiodic(0, Duration::seconds(1), {{0, 10000}}))
          .is_ok());
  auto rt = make_ds_runtime(std::move(tasks));
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  rt->run_until(Time(Duration::seconds(2).usec()));
  const auto& total = rt->metrics().total();
  EXPECT_EQ(total.releases, 1u);
  EXPECT_EQ(total.completions, 1u);
  EXPECT_EQ(total.deadline_misses, 0u);
  // Empty-server bound is 115 ms; actual service is faster (full budget).
  EXPECT_LE(rt->metrics().per_task().at(TaskId(0)).response_ms.max(), 115.0);
  EXPECT_GT(rt->deferrable_server(ProcessorId(0))->stats().jobs_served, 0u);
}

TEST(DsRuntimeTest, PeriodicTasksUnaffectedByServerWhenIdle) {
  sched::TaskSet tasks;
  ASSERT_TRUE(tasks.add(make_periodic(0, Duration::milliseconds(400),
                                      {{0, 40000}}))
                  .is_ok());
  ASSERT_TRUE(
      tasks.add(make_aperiodic(1, Duration::seconds(1), {{0, 10000}}))
          .is_ok());
  // A 10 ms/100 ms server reserves 2*B/P = 0.2 against periodic work, which
  // leaves room for the 0.1-utilization periodic task (a 25 ms budget would
  // reserve 0.5 and correctly reject it).
  auto rt = make_ds_runtime(std::move(tasks), "J_T_N",
                            Duration::milliseconds(10));
  for (int k = 0; k < 4; ++k) {
    RTCM_EXPECT_OK(rt->inject_arrival(
        TaskId(0), Time(Duration::milliseconds(400 * k).usec())));
  }
  RTCM_EXPECT_OK(rt->inject_arrival(
      TaskId(1), Time(Duration::milliseconds(100).usec())));
  rt->run_until(Time(Duration::seconds(3).usec()));
  EXPECT_EQ(rt->metrics().total().deadline_misses, 0u);
  EXPECT_EQ(rt->metrics().per_task().at(TaskId(0)).completions, 4u);
  EXPECT_EQ(rt->metrics().per_task().at(TaskId(1)).completions, 1u);
}

TEST(DsRuntimeTest, OverloadedServerRejectsAperiodicJobs) {
  sched::TaskSet tasks;
  // 40 ms of work per job against a 25 ms/100 ms server with a deadline too
  // tight for the delay bound: 75 + 40*4 = 235 ms > 230 ms.
  ASSERT_TRUE(tasks.add(make_aperiodic(0, Duration::milliseconds(230),
                                       {{0, 40000}}))
                  .is_ok());
  auto rt = make_ds_runtime(std::move(tasks));
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  rt->run_until(Time(Duration::seconds(1).usec()));
  EXPECT_EQ(rt->metrics().total().rejections, 1u);
  EXPECT_EQ(rt->metrics().total().releases, 0u);
}

TEST(DsRuntimeTest, BacklogReleasedAtPredictedCompletion) {
  sched::TaskSet tasks;
  // Each job's bound alone: 75 + 80 = 155 ms <= 200 ms deadline; with a
  // 20 ms backlog ahead: 75 + 160 = 235 ms > 200 ms.  The job arriving at
  // 10 ms is rejected, but the one arriving at 180 ms is admitted because
  // the first job's backlog was released at its predicted completion
  // (155 ms) — before its 200 ms deadline backstop.
  ASSERT_TRUE(tasks.add(make_aperiodic(0, Duration::milliseconds(200),
                                       {{0, 20000}}))
                  .is_ok());
  auto rt = make_ds_runtime(std::move(tasks), "J_N_N");  // no idle resetting
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  RTCM_EXPECT_OK(rt->inject_arrival(
      TaskId(0), Time(Duration::milliseconds(10).usec())));
  RTCM_EXPECT_OK(rt->inject_arrival(
      TaskId(0), Time(Duration::milliseconds(180).usec())));
  rt->run_until(Time(Duration::seconds(2).usec()));
  EXPECT_EQ(rt->metrics().total().releases, 2u);
  EXPECT_EQ(rt->metrics().total().rejections, 1u);
  EXPECT_EQ(rt->metrics().total().deadline_misses, 0u);
}

TEST(DsRuntimeTest, IdleResetReleasesDsBacklogEarly) {
  sched::TaskSet tasks;
  ASSERT_TRUE(tasks.add(make_aperiodic(0, Duration::milliseconds(200),
                                       {{0, 20000}}))
                  .is_ok());
  // The first job actually completes at ~20 ms and the processor idles;
  // with IR per task its backlog is reported complete right then — well
  // before the 155 ms predicted release — so an arrival at 100 ms IS
  // admitted (it would be rejected without idle resetting).
  auto rt = make_ds_runtime(std::move(tasks), "J_T_N");
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  RTCM_EXPECT_OK(rt->inject_arrival(
      TaskId(0), Time(Duration::milliseconds(100).usec())));
  rt->run_until(Time(Duration::seconds(1).usec()));
  EXPECT_EQ(rt->metrics().total().releases, 2u);
  EXPECT_EQ(rt->metrics().total().rejections, 0u);
}

// Property: DS-mode random workloads never miss admitted deadlines.
class DsDeadlineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DsDeadlineTest, AdmittedJobsMeetDeadlines) {
  Rng rng(GetParam());
  auto tasks =
      workload::generate_workload(workload::random_workload_shape(), rng);
  core::SystemConfig config;
  config.strategies = core::StrategyCombination::parse("J_T_T").value();
  config.comm_latency = Duration::zero();
  config.analysis = core::AperiodicAnalysis::kDeferrableServer;
  config.ds_server.budget = Duration::milliseconds(20);
  config.ds_server.period = Duration::milliseconds(100);
  core::SystemRuntime runtime(config, std::move(tasks));
  ASSERT_TRUE(runtime.assemble().is_ok());
  Rng arrival_rng = rng.fork(1);
  const Time horizon(Duration::seconds(20).usec());
  RTCM_EXPECT_OK(runtime.inject_arrivals(
      workload::generate_arrivals(runtime.tasks(), horizon, arrival_rng)));
  runtime.run_until(horizon + Duration::seconds(15));
  EXPECT_EQ(runtime.metrics().total().deadline_misses, 0u);
  EXPECT_EQ(runtime.metrics().total().releases,
            runtime.metrics().total().completions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsDeadlineTest, ::testing::Values(1, 2, 3, 4));

TEST(DsRuntimeTest, BurstyArrivalsConservedAndServedInOrder) {
  // Two aperiodic tasks bursting simultaneously: the server must shed the
  // overload at admission (no silent job loss), serve everything it admits
  // within the per-admission delay bound (no deadline misses), and recover
  // fully between bursts.
  sched::TaskSet tasks;
  ASSERT_TRUE(tasks.add(make_aperiodic(0, Duration::milliseconds(500),
                                       {{0, 10000}}))
                  .is_ok());
  ASSERT_TRUE(tasks.add(make_aperiodic(1, Duration::milliseconds(800),
                                       {{1, 15000}, {0, 5000}}))
                  .is_ok());
  auto rt = make_ds_runtime(std::move(tasks));

  rtcm::testing::BurstShape burst;
  burst.bursts = 3;
  burst.jobs_per_burst = 8;
  burst.intra_gap = Duration::milliseconds(3);
  burst.inter_gap = Duration::seconds(1);
  RTCM_EXPECT_OK(rt->inject_arrivals(
      rtcm::testing::make_bursty_arrivals({TaskId(0), TaskId(1)}, burst)));
  rt->run_until(Time(Duration::seconds(8).usec()));

  const auto& total = rt->metrics().total();
  EXPECT_EQ(total.arrivals, 48u);
  EXPECT_EQ(total.arrivals, total.releases + total.rejections);
  EXPECT_EQ(total.releases, total.completions);
  EXPECT_EQ(total.deadline_misses, 0u);
  EXPECT_GT(total.completions, 0u);
  // Every burst clears: once quiescent, the DS book holds no backlog.
  for (const ProcessorId proc : rt->app_processors()) {
    EXPECT_EQ(rt->admission_control()->ds_admission()->backlog(proc),
              Duration::zero());
  }
}

}  // namespace
}  // namespace rtcm
