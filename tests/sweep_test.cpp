// Sweep engine: parallel determinism, report round-trips, thread pool.
//
// The headline property (PR-1 contract cashed in): a sweep of the Figure-5
// grid sharded over N threads renders byte-identical results to the same
// sweep run single-threaded.  `ctest -R Sweep` selects this layer.
#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sweep/report.h"
#include "sweep/sweep.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace rtcm {
namespace {

/// The Figure-5 grid (all 15 valid combinations on the §7.1 random
/// workload), sized down for test runtime: fewer seeds and a shorter
/// horizon exercise exactly the same code paths per cell.
sweep::Grid figure5_grid(int seeds) {
  sweep::Grid grid;
  grid.combos = core::valid_combinations();
  grid.shapes = {{"random", workload::random_workload_shape()}};
  grid.seeds = seeds;
  return grid;
}

sweep::SweepParams fast_params() {
  sweep::SweepParams params;
  params.base.horizon = Duration::seconds(10);
  params.base.drain = Duration::seconds(5);
  return params;
}

sweep::Report report_of(std::string name,
                        std::vector<sweep::CellResult> cells) {
  sweep::Report report;
  report.name = std::move(name);
  report.git_sha = "test";
  report.cells = std::move(cells);
  return report;
}

TEST(SweepGrid, CellsEnumerateComboMajorWithSeedsInnermost) {
  sweep::Grid grid;
  grid.combos = {core::StrategyCombination::parse("T_N_N").value(),
                 core::StrategyCombination::parse("J_J_J").value()};
  grid.shapes = {{"a", workload::random_workload_shape()},
                 {"b", workload::imbalanced_workload_shape()}};
  grid.variants = {"x", "y"};
  grid.seeds = 3;

  const auto cells = grid.cells();
  ASSERT_EQ(cells.size(), 2u * 2u * 2u * 3u);
  EXPECT_EQ(cells[0].combo, "T_N_N");
  EXPECT_EQ(cells[0].shape, "a");
  EXPECT_EQ(cells[0].variant, "x");
  EXPECT_EQ(cells[0].seed, 1u);
  EXPECT_EQ(cells[1].seed, 2u);
  EXPECT_EQ(cells[3].variant, "y");
  EXPECT_EQ(cells[6].shape, "b");
  EXPECT_EQ(cells[12].combo, "J_J_J");
  EXPECT_EQ(cells.back().seed, 3u);
}

TEST(SweepEngine, MultiThreadSweepIsByteIdenticalToSingleThread) {
  const sweep::Grid grid = figure5_grid(3);
  const sweep::SweepParams params = fast_params();

  sweep::SweepOptions single;
  single.threads = 1;
  sweep::SweepOptions sharded;
  sharded.threads = 4;

  const auto serial = sweep::run_sweep(grid, params, single);
  const auto parallel = sweep::run_sweep(grid, params, sharded);

  const std::string serial_bytes =
      report_of("fig5", serial).deterministic_dump();
  const std::string parallel_bytes =
      report_of("fig5", parallel).deterministic_dump();
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, parallel_bytes);

  // The sweep actually simulated something: ratios are populated and no
  // cell errored.
  ASSERT_EQ(serial.size(), grid.cells().size());
  for (const auto& cell : serial) {
    EXPECT_TRUE(cell.error.empty()) << cell.error;
    EXPECT_GT(cell.accept_ratio, 0.0);
    EXPECT_LE(cell.accept_ratio, 1.0);
  }
}

TEST(SweepEngine, RepeatedSweepsAreByteIdentical) {
  const sweep::Grid grid = figure5_grid(2);
  const sweep::SweepParams params = fast_params();
  sweep::SweepOptions options;
  options.threads = 3;

  const std::string first =
      report_of("r", sweep::run_sweep(grid, params, options))
          .deterministic_dump();
  const std::string second =
      report_of("r", sweep::run_sweep(grid, params, options))
          .deterministic_dump();
  EXPECT_EQ(first, second);
}

TEST(SweepEngine, ConfigureHookSeesVariantAxis) {
  sweep::Grid grid;
  grid.combos = {core::StrategyCombination::parse("J_N_T").value()};
  grid.shapes = {{"imbalanced", workload::imbalanced_workload_shape()}};
  grid.variants = {"primary", "lowest-util"};
  grid.seeds = 2;

  sweep::SweepParams params = fast_params();
  params.specialize = [](const sweep::Cell& cell,
                         scenario::ScenarioSpec& spec) {
    spec.config.lb_policy = cell.variant;
  };

  const auto results = sweep::run_sweep(grid, params, {});
  ASSERT_EQ(results.size(), 4u);
  for (const auto& cell : results) {
    EXPECT_TRUE(cell.error.empty()) << cell.error;
  }
  const sweep::Report report = report_of("lb", results);
  // On the imbalanced workload the paper's heuristic must beat no-LB.
  EXPECT_GT(report.mean_accept_ratio("J_N_T", "lowest-util"),
            report.mean_accept_ratio("J_N_T", "primary"));
}

/// The reconfiguration axis: "reconfig" cells run a scripted mid-run mode
/// change (LB strategy swap + node drain + undrain) inside each cell's own
/// simulator/manager pair; "static" cells are the control.
sweep::SweepParams mode_change_params() {
  sweep::SweepParams params = fast_params();
  params.specialize = [](const sweep::Cell& cell,
                         scenario::ScenarioSpec& spec) {
    if (cell.variant != "reconfig") return;
    spec.reconfig = rtcm::testing::ReconfigScriptBuilder()
                        .swap_strategies(Time(Duration::seconds(2).usec()),
                                         "J_N_J")
                        .drain(Time(Duration::seconds(3).usec()), 4)
                        .swap_lb_policy(Time(Duration::seconds(4).usec()),
                                        "primary")
                        .undrain(Time(Duration::seconds(6).usec()), 4)
                        .build();
  };
  return params;
}

TEST(SweepEngine, ModeChangeCellsAreByteIdenticalAcrossThreadCounts) {
  sweep::Grid grid;
  grid.combos = {core::StrategyCombination::parse("T_N_N").value(),
                 core::StrategyCombination::parse("J_J_J").value()};
  grid.shapes = {{"imbalanced", workload::imbalanced_workload_shape()}};
  grid.variants = {"static", "reconfig"};
  grid.seeds = 2;
  const sweep::SweepParams params = mode_change_params();

  sweep::SweepOptions single;
  single.threads = 1;
  sweep::SweepOptions sharded;
  sharded.threads = 4;
  const auto serial = sweep::run_sweep(grid, params, single);
  const auto parallel = sweep::run_sweep(grid, params, sharded);

  EXPECT_EQ(report_of("reconfig", serial).deterministic_dump(),
            report_of("reconfig", parallel).deterministic_dump());

  ASSERT_EQ(serial.size(), grid.cells().size());
  for (const auto& cell : serial) {
    EXPECT_TRUE(cell.error.empty()) << cell.error;
    EXPECT_EQ(cell.deadline_misses, 0u);
    if (cell.cell.variant == "reconfig") {
      // The script's swap + drain + undrain all applied in-cell.
      EXPECT_GE(cell.reconfig_applied, 3u) << cell.cell.combo;
    } else {
      EXPECT_EQ(cell.reconfig_applied, 0u);
      EXPECT_EQ(cell.reconfig_rejected, 0u);
    }
  }
}

TEST(SweepReport, ReconfigCountersSurviveJsonRoundTrip) {
  std::vector<sweep::CellResult> cells(2);
  cells[0].cell = {"T_N_N", "s", "reconfig", 1};
  cells[0].reconfig_applied = 3;
  cells[0].reconfig_rejected = 1;
  cells[1].cell = {"T_N_N", "s", "static", 1};
  const sweep::Report report = report_of("rc", std::move(cells));

  const auto parsed = json::Value::parse(report.to_json().dump());
  ASSERT_TRUE(parsed.is_ok());
  const auto restored = sweep::Report::from_json(parsed.value());
  ASSERT_TRUE(restored.is_ok()) << restored.message();
  EXPECT_EQ(restored.value().cells[0].reconfig_applied, 3u);
  EXPECT_EQ(restored.value().cells[0].reconfig_rejected, 1u);
  EXPECT_EQ(restored.value().cells[1].reconfig_applied, 0u);
  // Cells without reconfiguration keep the historical byte layout.
  EXPECT_EQ(report.to_json().dump().find("reconfig_applied\":0"),
            std::string::npos);
}

TEST(SweepEngine, InvalidComboSurfacesAsCellError) {
  const sweep::CellResult direct = sweep::run_cell(
      sweep::Cell{"not-a-combo", "random", "", 1},
      workload::random_workload_shape(), fast_params());
  EXPECT_FALSE(direct.error.empty());
  EXPECT_EQ(direct.accept_ratio, 0.0);
}

TEST(SweepReport, JsonRoundTripPreservesCellsAndParams) {
  sweep::Grid grid = figure5_grid(2);
  grid.combos = {core::StrategyCombination::parse("J_J_N").value(),
                 core::StrategyCombination::parse("T_N_N").value()};
  sweep::Report report =
      report_of("roundtrip", sweep::run_sweep(grid, fast_params(), {}));
  report.params.set("seeds", 2);
  report.params.set("horizon_s", 10);

  const std::string bytes = report.to_json().dump();
  const auto parsed = json::Value::parse(bytes);
  ASSERT_TRUE(parsed.is_ok()) << parsed.message();
  const auto restored = sweep::Report::from_json(parsed.value());
  ASSERT_TRUE(restored.is_ok()) << restored.message();

  const sweep::Report& r = restored.value();
  EXPECT_EQ(r.name, report.name);
  EXPECT_EQ(r.git_sha, report.git_sha);
  EXPECT_EQ(r.params.get("seeds").as_int(), 2);
  ASSERT_EQ(r.cells.size(), report.cells.size());
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    EXPECT_EQ(r.cells[i].cell.combo, report.cells[i].cell.combo);
    EXPECT_EQ(r.cells[i].cell.seed, report.cells[i].cell.seed);
    EXPECT_DOUBLE_EQ(r.cells[i].accept_ratio, report.cells[i].accept_ratio);
    EXPECT_EQ(r.cells[i].deadline_misses, report.cells[i].deadline_misses);
  }
  // Serialize -> parse -> serialize is a fixed point (canonical form).
  EXPECT_EQ(r.to_json().dump(), bytes);
}

TEST(SweepReport, DeterministicDumpOmitsTimingAndProvenance) {
  sweep::Grid grid;
  grid.combos = {core::StrategyCombination::parse("T_N_N").value()};
  grid.shapes = {{"random", workload::random_workload_shape()}};
  grid.seeds = 1;
  sweep::Report report =
      report_of("det", sweep::run_sweep(grid, fast_params(), {}));

  const std::string full = report.to_json().dump();
  const std::string det = report.deterministic_dump();
  EXPECT_NE(full.find("wall_ms"), std::string::npos);
  EXPECT_NE(full.find("git_sha"), std::string::npos);
  EXPECT_EQ(det.find("wall_ms"), std::string::npos);
  EXPECT_EQ(det.find("git_sha"), std::string::npos);
  EXPECT_NE(det.find("accept_ratio"), std::string::npos);
}

TEST(SweepReport, FromJsonRejectsWrongSchemaVersion) {
  json::Value doc = json::Value::object();
  doc.set("schema_version", 999);
  doc.set("name", "x");
  EXPECT_FALSE(sweep::Report::from_json(doc).is_ok());
  EXPECT_FALSE(sweep::Report::from_json(json::Value("nope")).is_ok());
}

TEST(SweepReport, AggregatesGroupByComboShapeVariant) {
  std::vector<sweep::CellResult> cells(4);
  cells[0].cell = {"A", "s", "", 1};
  cells[0].accept_ratio = 0.5;
  cells[1].cell = {"A", "s", "", 2};
  cells[1].accept_ratio = 0.7;
  cells[2].cell = {"B", "s", "", 1};
  cells[2].accept_ratio = 1.0;
  cells[3].cell = {"A", "t", "", 1};
  cells[3].accept_ratio = 0.1;
  const sweep::Report report = report_of("agg", std::move(cells));

  const auto aggregates = report.aggregates();
  ASSERT_EQ(aggregates.size(), 3u);
  EXPECT_EQ(aggregates[0].combo, "A");
  EXPECT_EQ(aggregates[0].shape, "s");
  EXPECT_EQ(aggregates[0].accept_ratio.count(), 2u);
  EXPECT_DOUBLE_EQ(aggregates[0].accept_ratio.mean(), 0.6);
  EXPECT_DOUBLE_EQ(report.mean_accept_ratio("B"), 1.0);
}

TEST(SweepThreadPool, RunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  constexpr int kJobs = 300;
  std::vector<std::atomic<int>> hits(kJobs);
  std::vector<ThreadPool::Job> jobs;
  jobs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.run(std::move(jobs));
  for (int i = 0; i < kJobs; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "job " << i;
  }
}

TEST(SweepThreadPool, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<ThreadPool::Job> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back([&order, i] { order.push_back(i); });
  }
  pool.run(std::move(jobs));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SweepThreadPool, IdleWorkersStealQueuedWork) {
  // One long job pins worker 0's deque; the short jobs dealt to it must be
  // stolen and completed by the other workers for run() to return quickly.
  ThreadPool pool(3);
  std::atomic<int> done{0};
  std::vector<ThreadPool::Job> jobs;
  jobs.push_back([&done] {
    // Busy-wait until every other job has been run by someone else.
    while (done.load() < 30) {
    }
    done.fetch_add(1);
  });
  for (int i = 0; i < 30; ++i) {
    jobs.push_back([&done] { done.fetch_add(1); });
  }
  pool.run(std::move(jobs));
  EXPECT_EQ(done.load(), 31);
}

TEST(SweepThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  std::atomic<int> count{0};
  std::vector<ThreadPool::Job> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back([&count] { count.fetch_add(1); });
  }
  pool.run(std::move(jobs));
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace rtcm
