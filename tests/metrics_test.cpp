// Direct unit tests of the metrics collector (the paper's accepted
// utilization ratio and supporting accounting).
#include <gtest/gtest.h>

#include "core/metrics.h"
#include "test_helpers.h"

namespace rtcm::core {
namespace {

using rtcm::testing::make_aperiodic;
using rtcm::testing::make_periodic;

sched::TaskSpec util_half_task(std::int32_t id = 0) {
  // Single 50 ms stage on a 100 ms deadline: utilization 0.5.
  return make_periodic(id, Duration::milliseconds(100), {{0, 50000}});
}

TEST(MetricsTest, EmptyCollectorReportsRatioOne) {
  MetricsCollector metrics;
  EXPECT_DOUBLE_EQ(metrics.accepted_utilization_ratio(), 1.0);
  EXPECT_EQ(metrics.total().arrivals, 0u);
}

TEST(MetricsTest, RatioIsReleasedOverArrivedUtilization) {
  MetricsCollector metrics;
  const auto task = util_half_task();
  metrics.on_arrival(task, JobId(1), Time(0));
  metrics.on_arrival(task, JobId(2), Time(1));
  metrics.on_arrival(task, JobId(3), Time(2));
  metrics.on_release(task, JobId(1), Time(10));
  metrics.on_release(task, JobId(2), Time(11));
  metrics.on_rejection(task, JobId(3), Time(12));
  EXPECT_NEAR(metrics.accepted_utilization_ratio(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(metrics.total().releases, 2u);
  EXPECT_EQ(metrics.total().rejections, 1u);
  EXPECT_NEAR(metrics.total().arrived_utilization, 1.5, 1e-12);
  EXPECT_NEAR(metrics.total().released_utilization, 1.0, 1e-12);
}

TEST(MetricsTest, RatioWeighsTasksByUtilization) {
  MetricsCollector metrics;
  const auto heavy = util_half_task(0);
  const auto light =
      make_periodic(1, Duration::milliseconds(100), {{1, 10000}});
  metrics.on_arrival(heavy, JobId(1), Time(0));
  metrics.on_arrival(light, JobId(2), Time(0));
  metrics.on_release(light, JobId(2), Time(5));
  metrics.on_rejection(heavy, JobId(1), Time(5));
  // Released 0.1 of an arrived 0.6.
  EXPECT_NEAR(metrics.accepted_utilization_ratio(), 0.1 / 0.6, 1e-12);
}

TEST(MetricsTest, CompletionComputesResponseFromArrival) {
  MetricsCollector metrics;
  const auto task = util_half_task();
  metrics.on_arrival(task, JobId(1), Time(Duration::milliseconds(10).usec()));
  metrics.on_release(task, JobId(1), Time(Duration::milliseconds(11).usec()));
  metrics.job_completed(task.id, JobId(1),
                        Time(Duration::milliseconds(11).usec()),
                        Time(Duration::milliseconds(70).usec()),
                        Time(Duration::milliseconds(110).usec()));
  const auto& tm = metrics.per_task().at(task.id);
  EXPECT_EQ(tm.completions, 1u);
  EXPECT_EQ(tm.deadline_misses, 0u);
  EXPECT_NEAR(tm.response_ms.mean(), 60.0, 1e-9);  // 70 - 10
}

TEST(MetricsTest, LateCompletionCountsAsMiss) {
  MetricsCollector metrics;
  const auto task = util_half_task();
  metrics.on_arrival(task, JobId(1), Time(0));
  metrics.on_release(task, JobId(1), Time(1));
  metrics.job_completed(task.id, JobId(1), Time(1),
                        Time(Duration::milliseconds(150).usec()),
                        Time(Duration::milliseconds(100).usec()));
  EXPECT_EQ(metrics.total().deadline_misses, 1u);
}

TEST(MetricsTest, PerTaskBreakdownIsIndependent) {
  MetricsCollector metrics;
  const auto a = util_half_task(0);
  const auto b = make_aperiodic(1, Duration::milliseconds(200), {{0, 20000}});
  metrics.on_arrival(a, JobId(1), Time(0));
  metrics.on_arrival(b, JobId(2), Time(0));
  metrics.on_release(a, JobId(1), Time(1));
  metrics.on_rejection(b, JobId(2), Time(1));
  EXPECT_EQ(metrics.per_task().at(TaskId(0)).releases, 1u);
  EXPECT_EQ(metrics.per_task().at(TaskId(0)).rejections, 0u);
  EXPECT_EQ(metrics.per_task().at(TaskId(1)).releases, 0u);
  EXPECT_EQ(metrics.per_task().at(TaskId(1)).rejections, 1u);
}

TEST(MetricsTest, IdleResetAccounting) {
  MetricsCollector metrics;
  metrics.on_idle_reset(3);
  metrics.on_idle_reset(0);
  metrics.on_idle_reset(2);
  EXPECT_EQ(metrics.idle_resets(), 3u);
  EXPECT_EQ(metrics.subjobs_reset(), 5u);
}

TEST(MetricsTest, CompletionOfUnknownJobIsSafe) {
  MetricsCollector metrics;
  // A completion whose arrival was never recorded (e.g. harness-driven)
  // still counts but records no response sample.
  metrics.job_completed(TaskId(0), JobId(99), Time(0), Time(10), Time(20));
  EXPECT_EQ(metrics.total().completions, 1u);
  EXPECT_EQ(metrics.total().response_ms.count(), 0u);
}

TEST(MetricsTest, RenderMentionsEveryTask) {
  MetricsCollector metrics;
  metrics.on_arrival(util_half_task(3), JobId(1), Time(0));
  metrics.on_arrival(make_periodic(7, Duration::seconds(1), {{0, 1000}}),
                     JobId(2), Time(0));
  const std::string text = metrics.render();
  EXPECT_NE(text.find("T3"), std::string::npos);
  EXPECT_NE(text.find("T7"), std::string::npos);
}

TEST(MetricsTest, RatioBoundedUnderBurstyPartialAdmission) {
  // Drive the collector with a bursty arrival trace where only every third
  // job is released: the headline ratio must stay in [0, 1] after every
  // event and converge to the released share (all jobs share one spec, so
  // utilization weighting reduces to a count ratio).
  MetricsCollector metrics;
  const auto spec = rtcm::testing::make_aperiodic(
      0, Duration::milliseconds(100), {{0, 10000}});
  rtcm::testing::BurstShape shape;
  shape.bursts = 3;
  shape.jobs_per_burst = 10;
  const auto trace = rtcm::testing::make_bursty_arrivals(TaskId(0), shape);
  std::uint64_t released = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const JobId job(static_cast<std::int32_t>(i));
    metrics.on_arrival(spec, job, trace[i].time);
    if (i % 3 == 0) {
      metrics.on_release(spec, job, trace[i].time);
      ++released;
    } else {
      metrics.on_rejection(spec, job, trace[i].time);
    }
    const double ratio = metrics.accepted_utilization_ratio();
    EXPECT_GE(ratio, 0.0);
    EXPECT_LE(ratio, 1.0);
  }
  EXPECT_EQ(metrics.total().arrivals, trace.size());
  EXPECT_NEAR(metrics.accepted_utilization_ratio(),
              static_cast<double>(released) / trace.size(), 1e-9);
}

}  // namespace
}  // namespace rtcm::core
