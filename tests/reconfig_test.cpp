// Online reconfiguration engine (`ctest -R Reconfig` selects this layer):
// plan-diff algebra, live application with guarantee-preserving migration,
// rejection/rollback atomicity, quiesce ordering, the configuration engine's
// mode-change plan sequences, and a trace golden for a scripted run.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "config/engine.h"
#include "config/plan_builder.h"
#include "core/runtime.h"
#include "core/subtask_component.h"
#include "dance/plan_xml.h"
#include "reconfig/manager.h"
#include "reconfig/plan_diff.h"
#include "test_helpers.h"
#include "workload/arrival.h"
#include "workload/generator.h"

namespace rtcm {
namespace {

using rtcm::testing::make_periodic;
using rtcm::testing::ReconfigScriptBuilder;

std::unique_ptr<core::SystemRuntime> make_runtime(const std::string& combo,
                                                  sched::TaskSet tasks,
                                                  bool trace = false) {
  core::SystemConfig config;
  config.strategies = core::StrategyCombination::parse(combo).value();
  config.comm_latency = Duration::zero();
  config.enable_trace = trace;
  auto runtime =
      std::make_unique<core::SystemRuntime>(config, std::move(tasks));
  EXPECT_TRUE(runtime->assemble().is_ok());
  return runtime;
}

/// One periodic task, deadline 100 ms, one 10 ms stage on P0 with a P1
/// duplicate — the smallest workload where a drain has somewhere to go.
sched::TaskSet replicated_task() {
  sched::TaskSet tasks;
  EXPECT_TRUE(tasks.add(make_periodic(0, Duration::milliseconds(100),
                                      {{0, 10000, {1}}}))
                  .is_ok());
  return tasks;
}

config::PlanBuilderInput plan_input_for(const sched::TaskSet& tasks,
                                        const std::string& combo) {
  config::PlanBuilderInput input;
  input.tasks = &tasks;
  input.strategies = core::StrategyCombination::parse(combo).value();
  std::int32_t max_id = 0;
  for (const ProcessorId p : tasks.processors()) {
    max_id = std::max(max_id, p.value());
  }
  input.task_manager = ProcessorId(max_id + 1);
  return input;
}

/// Order-insensitive plan equality (apply preserves from-plan order, which
/// legitimately differs from the target's).
bool same_plan(dance::DeploymentPlan a, dance::DeploymentPlan b) {
  auto by_id = [](const dance::InstanceDeployment& x,
                  const dance::InstanceDeployment& y) { return x.id < y.id; };
  auto by_key = [](const dance::ConnectionDeployment& x,
                   const dance::ConnectionDeployment& y) {
    return std::tie(x.source_instance, x.receptacle) <
           std::tie(y.source_instance, y.receptacle);
  };
  std::sort(a.instances.begin(), a.instances.end(), by_id);
  std::sort(b.instances.begin(), b.instances.end(), by_id);
  std::sort(a.connections.begin(), a.connections.end(), by_key);
  std::sort(b.connections.begin(), b.connections.end(), by_key);
  return a.instances == b.instances && a.connections == b.connections;
}

// --- Plan-diff algebra -------------------------------------------------------

TEST(ReconfigPlanDiffTest, DiffOfIdenticalPlansIsEmpty) {
  const auto tasks = replicated_task();
  const auto plan =
      config::build_deployment_plan(plan_input_for(tasks, "T_N_N"));
  ASSERT_TRUE(plan.is_ok()) << plan.message();
  const auto diff = reconfig::PlanDiffer::diff(plan.value(), plan.value());
  ASSERT_TRUE(diff.is_ok()) << diff.message();
  EXPECT_TRUE(diff.value().empty());
}

TEST(ReconfigPlanDiffTest, StrategySwapYieldsOnlyReconfigureOps) {
  const auto tasks = replicated_task();
  const auto from =
      config::build_deployment_plan(plan_input_for(tasks, "T_N_N"));
  const auto to = config::build_deployment_plan(plan_input_for(tasks, "J_J_J"));
  ASSERT_TRUE(from.is_ok() && to.is_ok());
  const auto diff = reconfig::PlanDiffer::diff(from.value(), to.value());
  ASSERT_TRUE(diff.is_ok()) << diff.message();
  const reconfig::Changeset& cs = diff.value();
  using K = reconfig::ChangeKind;
  EXPECT_GT(cs.count(K::kReconfigureInstance), 0u);
  EXPECT_EQ(cs.count(K::kAddInstance), 0u);
  EXPECT_EQ(cs.count(K::kRemoveInstance), 0u);
  EXPECT_EQ(cs.count(K::kMigrateInstance), 0u);
  // AC strategy attrs, TE mode, IR strategy and subtask IR_Mode all change.
  EXPECT_GE(cs.count(K::kReconfigureInstance), 4u);

  const auto applied = reconfig::apply_changeset(from.value(), cs);
  ASSERT_TRUE(applied.is_ok()) << applied.message();
  EXPECT_TRUE(same_plan(applied.value(), to.value()));
}

TEST(ReconfigPlanDiffTest, DrainRemovesAndUndrainRestoresInstances) {
  const auto tasks = replicated_task();
  auto input = plan_input_for(tasks, "T_N_N");
  const auto full = config::build_deployment_plan(input);
  input.drained = {ProcessorId(0)};
  const auto drained = config::build_deployment_plan(input);
  ASSERT_TRUE(full.is_ok() && drained.is_ok()) << drained.message();

  const auto down = reconfig::PlanDiffer::diff(full.value(), drained.value());
  ASSERT_TRUE(down.is_ok());
  using K = reconfig::ChangeKind;
  EXPECT_EQ(down.value().count(K::kRemoveInstance), 1u);  // T0_S0@P0
  EXPECT_EQ(down.value().count(K::kRemoveConnection), 1u);
  EXPECT_EQ(down.value().count(K::kAddInstance), 0u);
  // Canonical order: tear-down (connections, then instances) first.
  ASSERT_GE(down.value().changes.size(), 2u);
  EXPECT_EQ(down.value().changes[0].kind, K::kRemoveConnection);
  EXPECT_EQ(down.value().changes[1].kind, K::kRemoveInstance);
  EXPECT_EQ(down.value().changes[1].instance.id, "T0_S0@P0");

  const auto up = reconfig::PlanDiffer::diff(drained.value(), full.value());
  ASSERT_TRUE(up.is_ok());
  EXPECT_EQ(up.value().count(K::kAddInstance), 1u);
  EXPECT_EQ(up.value().count(K::kAddConnection), 1u);
  EXPECT_EQ(up.value().count(K::kRemoveInstance), 0u);

  const auto round = reconfig::apply_changeset(full.value(), down.value());
  ASSERT_TRUE(round.is_ok());
  EXPECT_TRUE(same_plan(round.value(), drained.value()));
  const auto back = reconfig::apply_changeset(round.value(), up.value());
  ASSERT_TRUE(back.is_ok());
  EXPECT_TRUE(same_plan(back.value(), full.value()));
}

TEST(ReconfigPlanDiffTest, SameIdOnDifferentNodeIsAMigration) {
  dance::DeploymentPlan from;
  from.label = "a";
  dance::InstanceDeployment inst;
  inst.id = "X";
  inst.type = "rtcm.TaskEffector";
  inst.node = ProcessorId(0);
  from.instances.push_back(inst);
  dance::DeploymentPlan to = from;
  to.label = "b";
  to.instances[0].node = ProcessorId(1);

  const auto diff = reconfig::PlanDiffer::diff(from, to);
  ASSERT_TRUE(diff.is_ok());
  ASSERT_EQ(diff.value().changes.size(), 1u);
  const reconfig::Change& c = diff.value().changes[0];
  EXPECT_EQ(c.kind, reconfig::ChangeKind::kMigrateInstance);
  EXPECT_EQ(c.from_node, ProcessorId(0));
  EXPECT_EQ(c.instance.node, ProcessorId(1));

  const auto applied = reconfig::apply_changeset(from, diff.value());
  ASSERT_TRUE(applied.is_ok());
  EXPECT_TRUE(same_plan(applied.value(), to));
}

TEST(ReconfigPlanDiffTest, TypeChangeIsRemovePlusAdd) {
  dance::DeploymentPlan from;
  dance::InstanceDeployment inst;
  inst.id = "X";
  inst.type = "rtcm.TaskEffector";
  inst.node = ProcessorId(0);
  from.instances.push_back(inst);
  dance::DeploymentPlan to = from;
  to.instances[0].type = "rtcm.IdleResetter";

  const auto diff = reconfig::PlanDiffer::diff(from, to);
  ASSERT_TRUE(diff.is_ok());
  using K = reconfig::ChangeKind;
  EXPECT_EQ(diff.value().count(K::kRemoveInstance), 1u);
  EXPECT_EQ(diff.value().count(K::kAddInstance), 1u);
  EXPECT_EQ(diff.value().count(K::kReconfigureInstance), 0u);
  const auto applied = reconfig::apply_changeset(from, diff.value());
  ASSERT_TRUE(applied.is_ok());
  EXPECT_TRUE(same_plan(applied.value(), to));
}

TEST(ReconfigPlanDiffTest, ChangedEndpointIsARewire) {
  dance::DeploymentPlan from;
  for (const char* id : {"A", "B", "C"}) {
    dance::InstanceDeployment inst;
    inst.id = id;
    inst.type = "rtcm.TaskEffector";
    inst.node = ProcessorId(0);
    from.instances.push_back(inst);
  }
  from.connections.push_back({"a-to-b", "A", "Out", "B", "In"});
  dance::DeploymentPlan to = from;
  to.connections[0].target_instance = "C";

  const auto diff = reconfig::PlanDiffer::diff(from, to);
  ASSERT_TRUE(diff.is_ok());
  ASSERT_EQ(diff.value().changes.size(), 1u);
  const reconfig::Change& c = diff.value().changes[0];
  EXPECT_EQ(c.kind, reconfig::ChangeKind::kRewireConnection);
  EXPECT_EQ(c.old_connection.target_instance, "B");
  EXPECT_EQ(c.connection.target_instance, "C");
  const auto applied = reconfig::apply_changeset(from, diff.value());
  ASSERT_TRUE(applied.is_ok());
  EXPECT_TRUE(same_plan(applied.value(), to));
}

TEST(ReconfigPlanDiffTest, ApplyChangesetRejectsInconsistencies) {
  const auto tasks = replicated_task();
  const auto plan =
      config::build_deployment_plan(plan_input_for(tasks, "T_N_N"));
  ASSERT_TRUE(plan.is_ok());

  reconfig::Changeset cs;
  reconfig::Change remove_missing;
  remove_missing.kind = reconfig::ChangeKind::kRemoveInstance;
  remove_missing.instance.id = "no-such-instance";
  cs.changes.push_back(remove_missing);
  EXPECT_FALSE(reconfig::apply_changeset(plan.value(), cs).is_ok());

  cs.changes.clear();
  reconfig::Change duplicate;
  duplicate.kind = reconfig::ChangeKind::kAddInstance;
  duplicate.instance = plan.value().instances.front();
  cs.changes.push_back(duplicate);
  EXPECT_FALSE(reconfig::apply_changeset(plan.value(), cs).is_ok());
}

// --- Live application --------------------------------------------------------

TEST(ReconfigManagerTest, StrategySwapAppliesLiveToEveryLayer) {
  auto runtime = make_runtime("T_N_N", replicated_task());
  reconfig::ReconfigurationManager manager(*runtime);

  config::ModeChange change;
  change.at = Time(0);
  change.label = "go-per-job";
  change.strategies = core::StrategyCombination::parse("J_J_J").value();
  const reconfig::ReconfigReport report = manager.apply_now(change);
  EXPECT_TRUE(report.applied) << report.error;
  EXPECT_GE(report.reconfigured, 4u);
  EXPECT_EQ(report.migrated_tasks, 0u);

  EXPECT_EQ(runtime->admission_control()->ac_strategy(),
            core::AcStrategy::kPerJob);
  EXPECT_EQ(runtime->admission_control()->lb_strategy(),
            core::LbStrategy::kPerJob);
  EXPECT_EQ(runtime->idle_resetter(ProcessorId(0))->strategy(),
            core::IrStrategy::kPerJob);
  EXPECT_EQ(runtime->config().strategies.label(), "J_J_J");

  // The swapped system still serves jobs cleanly.
  RTCM_EXPECT_OK(runtime->inject_arrival(TaskId(0), Time(0)));
  runtime->run_until(Time(Duration::milliseconds(90).usec()));
  EXPECT_EQ(runtime->metrics().total().completions, 1u);
  EXPECT_EQ(runtime->metrics().total().deadline_misses, 0u);
}

TEST(ReconfigManagerTest, LbPolicySwapAppliesLive) {
  auto runtime = make_runtime("T_N_T", replicated_task());
  reconfig::ReconfigurationManager manager(*runtime);
  EXPECT_EQ(runtime->load_balancer()->policy(),
            sched::PlacementPolicy::kLowestUtilization);

  config::ModeChange change;
  change.at = Time(0);
  change.lb_policy = "primary";
  const auto report = manager.apply_now(change);
  EXPECT_TRUE(report.applied) << report.error;
  EXPECT_EQ(runtime->load_balancer()->policy(),
            sched::PlacementPolicy::kPrimaryOnly);
}

TEST(ReconfigManagerTest, DrainMigratesReservationAndQuiescesLater) {
  auto runtime = make_runtime("T_N_N", replicated_task(), /*trace=*/true);
  reconfig::ReconfigurationManager manager(*runtime);

  // First arrival reserves T0 on its primary P0 and starts a 10 ms subjob.
  RTCM_EXPECT_OK(runtime->inject_arrival(TaskId(0), Time(0)));
  runtime->run_until(Time(Duration::milliseconds(5).usec()));
  auto reservation =
      runtime->admission_control()->state().reservation(TaskId(0));
  ASSERT_TRUE(reservation.has_value());
  EXPECT_TRUE(std::ranges::equal(
      reservation->placement, std::vector<ProcessorId>{ProcessorId(0)}));

  config::ModeChange change;
  change.at = runtime->simulator().now();
  change.label = "drain-P0";
  change.drain = {ProcessorId(0)};
  const auto report = manager.apply_now(change);
  ASSERT_TRUE(report.applied) << report.error;
  EXPECT_EQ(report.migrated_tasks, 1u);
  EXPECT_EQ(report.removed, 1u);
  EXPECT_EQ(manager.drained(), (std::set<ProcessorId>{ProcessorId(0)}));

  // The reservation moved to the duplicate; the ledger moved with it.
  reservation = runtime->admission_control()->state().reservation(TaskId(0));
  ASSERT_TRUE(reservation.has_value());
  EXPECT_TRUE(std::ranges::equal(
      reservation->placement, std::vector<ProcessorId>{ProcessorId(1)}));
  const auto& ledger = runtime->admission_control()->state().ledger();
  EXPECT_DOUBLE_EQ(ledger.total(ProcessorId(0)), 0.0);
  EXPECT_NEAR(ledger.total(ProcessorId(1)), 0.1, 1e-12);

  // Quiesce is deferred past every deadline that could still reach P0
  // (now + D = 5 ms + 100 ms), so the in-flight subjob finishes in place.
  EXPECT_EQ(report.quiesce_at, Time(Duration::milliseconds(105).usec()));
  auto* old_instance =
      runtime->container(ProcessorId(0)).find_as<core::LastSubtask>(
          "T0_S0@P0");
  ASSERT_NE(old_instance, nullptr);
  EXPECT_EQ(old_instance->state(), ccm::LifecycleState::kActive);

  // A later job of the admitted task releases immediately on the new host.
  RTCM_EXPECT_OK(runtime->inject_arrival(
      TaskId(0), Time(Duration::milliseconds(100).usec())));
  runtime->run_until(Time(Duration::milliseconds(200).usec()));
  EXPECT_EQ(old_instance->state(), ccm::LifecycleState::kPassivated);
  EXPECT_EQ(old_instance->subjobs_executed(), 1u);  // only the pre-drain job
  auto* new_instance =
      runtime->container(ProcessorId(1)).find_as<core::LastSubtask>(
          "T0_S0@P1");
  ASSERT_NE(new_instance, nullptr);
  EXPECT_EQ(new_instance->subjobs_executed(), 1u);
  EXPECT_EQ(old_instance->triggers_dropped(), 0u);

  const auto& total = runtime->metrics().total();
  EXPECT_EQ(total.completions, 2u);
  EXPECT_EQ(total.deadline_misses, 0u);
  EXPECT_EQ(runtime->trace().count(sim::TraceKind::kTaskMigrated), 1u);
  EXPECT_EQ(runtime->trace().count(sim::TraceKind::kNodeQuiesced), 1u);
}

/// Two tasks on a shared duplicate host, sized so draining P0 would push
/// its utilization past the AUB bound: T1 holds 0.4 on P1, and moving T0's
/// 0.3 there makes term(0.7) > 1.
sched::TaskSet overloaded_pair() {
  sched::TaskSet tasks;
  EXPECT_TRUE(tasks.add(make_periodic(0, Duration::milliseconds(100),
                                      {{0, 30000, {1}}}))
                  .is_ok());
  EXPECT_TRUE(
      tasks.add(make_periodic(1, Duration::milliseconds(100), {{1, 40000}}))
          .is_ok());
  return tasks;
}

TEST(ReconfigManagerTest, GuaranteeViolatingDrainIsRejectedAtomically) {
  auto runtime = make_runtime("T_N_N", overloaded_pair(), /*trace=*/true);
  reconfig::ReconfigurationManager manager(*runtime);
  RTCM_EXPECT_OK(runtime->inject_arrival(TaskId(0), Time(0)));
  RTCM_EXPECT_OK(runtime->inject_arrival(TaskId(1), Time(0)));
  runtime->run_until(Time(Duration::milliseconds(50).usec()));
  const auto& ledger = runtime->admission_control()->state().ledger();
  ASSERT_NEAR(ledger.total(ProcessorId(0)), 0.3, 1e-12);
  ASSERT_NEAR(ledger.total(ProcessorId(1)), 0.4, 1e-12);

  config::ModeChange change;
  change.at = runtime->simulator().now();
  change.label = "bad-drain";
  change.drain = {ProcessorId(0)};
  const auto report = manager.apply_now(change);
  EXPECT_FALSE(report.applied);
  EXPECT_NE(report.error.find("guarantee"), std::string::npos) << report.error;
  EXPECT_EQ(manager.rejected_count(), 1u);
  EXPECT_TRUE(manager.drained().empty());
  EXPECT_TRUE(runtime->admission_control()->drained().empty());

  // Rolled back exactly: ledger, reservation placement, and future behavior.
  EXPECT_NEAR(ledger.total(ProcessorId(0)), 0.3, 1e-12);
  EXPECT_NEAR(ledger.total(ProcessorId(1)), 0.4, 1e-12);
  EXPECT_TRUE(std::ranges::equal(
      runtime->admission_control()->state().reservation(TaskId(0))->placement,
      std::vector<ProcessorId>{ProcessorId(0)}));
  RTCM_EXPECT_OK(runtime->inject_arrival(
      TaskId(0), Time(Duration::milliseconds(100).usec())));
  runtime->run_until(Time(Duration::milliseconds(200).usec()));
  EXPECT_EQ(runtime->metrics().total().completions, 3u);
  EXPECT_EQ(runtime->metrics().total().deadline_misses, 0u);
  EXPECT_EQ(runtime->trace().count(sim::TraceKind::kReconfigRejected), 1u);
  // A rolled-back migration never happened: no counter, no trace record.
  EXPECT_EQ(runtime->admission_control()->counters().migrations, 0u);
  EXPECT_EQ(runtime->trace().count(sim::TraceKind::kTaskMigrated), 0u);
}

TEST(ReconfigManagerTest, NewAttributeKeyInReconfigureIsRejected) {
  // configure() merges maps, so a brand-new key could survive a rollback;
  // the manager refuses such reconfigurations up front.
  auto runtime = make_runtime("T_N_N", replicated_task());
  reconfig::ReconfigurationManager manager(*runtime);
  dance::DeploymentPlan target = manager.current_plan();
  for (auto& inst : target.instances) {
    if (inst.id == "Central-LB") inst.properties.set_string("Brand-New", "x");
  }
  const auto report = manager.apply_plan_now(target, "new-key");
  EXPECT_FALSE(report.applied);
  EXPECT_NE(report.error.find("introduces attribute"), std::string::npos)
      << report.error;
}

TEST(ReconfigManagerTest, RejectionRollsBackAttributeSwapsToo) {
  auto runtime = make_runtime("T_N_N", overloaded_pair());
  reconfig::ReconfigurationManager manager(*runtime);
  RTCM_EXPECT_OK(runtime->inject_arrival(TaskId(0), Time(0)));
  RTCM_EXPECT_OK(runtime->inject_arrival(TaskId(1), Time(0)));
  runtime->run_until(Time(Duration::milliseconds(50).usec()));

  // One combined mode change: strategy swap + infeasible drain.  The drain
  // rejection must also undo the already-applied attribute swaps.
  config::ModeChange change;
  change.at = runtime->simulator().now();
  change.strategies = core::StrategyCombination::parse("J_J_J").value();
  change.lb_policy = "random";
  change.drain = {ProcessorId(0)};
  const auto report = manager.apply_now(change);
  EXPECT_FALSE(report.applied);

  EXPECT_EQ(runtime->admission_control()->ac_strategy(),
            core::AcStrategy::kPerTask);
  EXPECT_EQ(runtime->admission_control()->lb_strategy(),
            core::LbStrategy::kNone);
  EXPECT_EQ(runtime->idle_resetter(ProcessorId(0))->strategy(),
            core::IrStrategy::kNone);
  EXPECT_EQ(runtime->load_balancer()->policy(),
            sched::PlacementPolicy::kLowestUtilization);
  EXPECT_EQ(runtime->config().strategies.label(), "T_N_N");
  EXPECT_EQ(manager.applied_count(), 0u);
}

TEST(ReconfigManagerTest, UndrainCancelsPendingQuiesce) {
  auto runtime = make_runtime("T_N_N", replicated_task(), /*trace=*/true);
  reconfig::ReconfigurationManager manager(*runtime);
  RTCM_EXPECT_OK(runtime->inject_arrival(TaskId(0), Time(0)));

  const auto script = ReconfigScriptBuilder()
                          .drain(Time(Duration::milliseconds(20).usec()), 0)
                          .undrain(Time(Duration::milliseconds(40).usec()), 0)
                          .build();
  ASSERT_TRUE(manager.schedule_script(script).is_ok());
  runtime->run_until(Time(Duration::milliseconds(300).usec()));

  EXPECT_EQ(manager.applied_count(), 2u);
  EXPECT_TRUE(manager.drained().empty());
  // The pending passivation (due at 20 ms + 100 ms) was cancelled by the
  // undrain: the instance is live again and no node was quiesced.
  auto* instance =
      runtime->container(ProcessorId(0)).find_as<core::LastSubtask>(
          "T0_S0@P0");
  ASSERT_NE(instance, nullptr);
  EXPECT_EQ(instance->state(), ccm::LifecycleState::kActive);
  EXPECT_EQ(runtime->trace().count(sim::TraceKind::kNodeQuiesced), 0u);
  EXPECT_EQ(runtime->metrics().total().deadline_misses, 0u);
}

TEST(ReconfigManagerTest, EmptyModeChangeIsAppliedNoOp) {
  auto runtime = make_runtime("T_N_N", replicated_task());
  reconfig::ReconfigurationManager manager(*runtime);
  const auto report = manager.apply_now(config::ModeChange{});
  EXPECT_TRUE(report.applied) << report.error;
  EXPECT_EQ(report.reconfigured + report.added + report.removed, 0u);
  EXPECT_EQ(manager.applied_count(), 1u);
}

TEST(ReconfigManagerTest, DiffApplyEqualsDirectLaunchOfTargetMode) {
  // Launching T_T_N and immediately reconfiguring to J_J_J must behave
  // exactly like launching J_J_J: diff + apply == direct launch.
  auto run = [](const std::string& initial,
                const std::optional<std::string>& swap_to) {
    auto tasks = rtcm::testing::make_imbalanced_workload(42);
    core::SystemConfig config;
    config.strategies = core::StrategyCombination::parse(initial).value();
    config.comm_latency = Duration::zero();
    core::SystemRuntime runtime(config, std::move(tasks));
    EXPECT_TRUE(runtime.assemble().is_ok());
    reconfig::ReconfigurationManager manager(runtime);
    if (swap_to.has_value()) {
      config::ModeChange change;
      change.at = Time(0);
      change.strategies = core::StrategyCombination::parse(*swap_to).value();
      EXPECT_TRUE(manager.schedule(change).is_ok());
    }
    Rng arrival_rng = Rng(42).fork(1);
    const Time horizon(Duration::seconds(5).usec());
    RTCM_EXPECT_OK(runtime.inject_arrivals(
        workload::generate_arrivals(runtime.tasks(), horizon, arrival_rng)));
    runtime.run_until(horizon + Duration::seconds(11));
    const auto& total = runtime.metrics().total();
    return std::tuple{total.arrivals, total.releases, total.rejections,
                      total.completions, total.deadline_misses,
                      runtime.metrics().accepted_utilization_ratio()};
  };
  EXPECT_EQ(run("T_T_N", "J_J_J"), run("J_J_J", std::nullopt));
}

TEST(ReconfigManagerTest, ScheduledScriptAppliesAtRequestedVirtualTimes) {
  auto runtime = make_runtime("T_N_N", replicated_task());
  reconfig::ReconfigurationManager manager(*runtime);
  const auto script =
      ReconfigScriptBuilder()
          .swap_lb_policy(Time(Duration::milliseconds(10).usec()), "random")
          .swap_strategies(Time(Duration::milliseconds(20).usec()), "J_N_N")
          .build();
  ASSERT_TRUE(manager.schedule_script(script).is_ok());
  runtime->run_until(Time(Duration::milliseconds(30).usec()));

  ASSERT_EQ(manager.history().size(), 2u);
  EXPECT_EQ(manager.history()[0].at, Time(Duration::milliseconds(10).usec()));
  EXPECT_EQ(manager.history()[1].at, Time(Duration::milliseconds(20).usec()));
  EXPECT_TRUE(manager.history()[0].applied);
  EXPECT_TRUE(manager.history()[1].applied);
  EXPECT_EQ(runtime->admission_control()->ac_strategy(),
            core::AcStrategy::kPerJob);
}

TEST(ReconfigManagerTest, XmlScheduledPlanAppliesThroughTheDancePath) {
  const auto tasks = replicated_task();
  auto runtime = make_runtime("T_N_N", tasks);
  reconfig::ReconfigurationManager manager(*runtime);

  auto input = plan_input_for(tasks, "J_N_N");
  input.tasks = &runtime->tasks();
  input.label = "xml-target";
  const auto target = config::build_deployment_plan(input);
  ASSERT_TRUE(target.is_ok()) << target.message();
  ASSERT_TRUE(manager
                  .schedule_xml(Time(Duration::milliseconds(5).usec()),
                                dance::plan_to_xml(target.value()), "from-xml")
                  .is_ok());
  runtime->run_until(Time(Duration::milliseconds(10).usec()));
  ASSERT_EQ(manager.applied_count(), 1u);
  EXPECT_EQ(runtime->admission_control()->ac_strategy(),
            core::AcStrategy::kPerJob);
  EXPECT_EQ(manager.history().front().label, "from-xml");
}

TEST(ReconfigManagerTest, PartialDrainIsRejectedAsUnsupported) {
  sched::TaskSet tasks;
  ASSERT_TRUE(tasks.add(make_periodic(0, Duration::milliseconds(100),
                                      {{0, 10000, {1}}}))
                  .is_ok());
  ASSERT_TRUE(tasks.add(make_periodic(1, Duration::milliseconds(100),
                                      {{0, 10000, {1}}}))
                  .is_ok());
  auto runtime = make_runtime("T_N_N", tasks);
  reconfig::ReconfigurationManager manager(*runtime);

  // Hand-craft a target that removes T0's instance on P0 but keeps T1's.
  dance::DeploymentPlan target = manager.current_plan();
  std::erase_if(target.instances, [](const dance::InstanceDeployment& inst) {
    return inst.id == "T0_S0@P0";
  });
  std::erase_if(target.connections, [](const dance::ConnectionDeployment& c) {
    return c.source_instance == "T0_S0@P0";
  });
  const auto report = manager.apply_plan_now(target, "partial");
  EXPECT_FALSE(report.applied);
  EXPECT_NE(report.error.find("partial drain"), std::string::npos)
      << report.error;
}

TEST(ReconfigManagerTest, InfrastructureRemovalIsRejectedAsUnsupported) {
  auto runtime = make_runtime("T_N_N", replicated_task());
  reconfig::ReconfigurationManager manager(*runtime);
  dance::DeploymentPlan target = manager.current_plan();
  std::erase_if(target.instances, [](const dance::InstanceDeployment& inst) {
    return inst.id == "TE@P0";
  });
  const auto report = manager.apply_plan_now(target, "drop-te");
  EXPECT_FALSE(report.applied);
  EXPECT_NE(report.error.find("infrastructure"), std::string::npos)
      << report.error;
}

// --- Configuration engine: mode-change plan sequences ------------------------

constexpr const char* kSequenceSpec = R"(# mode-change workload
task sensor-scan periodic deadline=500ms period=500ms
  subtask exec=20ms primary=P0 replicas=P2
  subtask exec=10ms primary=P1
task hazard-alert aperiodic deadline=250ms mean_interarrival=2s
  subtask exec=5ms primary=P1 replicas=P0,P2
task archiver periodic deadline=5s period=5s
  subtask exec=100ms primary=P2 replicas=P0
)";

TEST(ReconfigEngineTest, EmitsPlanSequenceForModeChangeSchedule) {
  config::EngineInput input;
  input.workload_spec = kSequenceSpec;
  input.explicit_strategies = core::StrategyCombination::parse("T_N_N").value();
  config::ModeChange swap;
  swap.at = Time(Duration::seconds(5).usec());
  swap.label = "switch-lb";
  swap.strategies = core::StrategyCombination::parse("J_N_J").value();
  config::ModeChange drain;
  drain.at = Time(Duration::seconds(12).usec());
  drain.label = "drain-node-2";
  drain.drain = {ProcessorId(2)};
  input.mode_changes = {swap, drain};

  const auto output = config::ConfigurationEngine().configure(input);
  ASSERT_TRUE(output.is_ok()) << output.message();
  ASSERT_EQ(output.value().schedule.size(), 2u);

  const config::TimedPlan& first = output.value().schedule[0];
  EXPECT_EQ(first.at, swap.at);
  EXPECT_EQ(first.label, "switch-lb");
  const auto* ac = first.plan.find_instance("Central-AC");
  ASSERT_NE(ac, nullptr);
  EXPECT_EQ(ac->properties.get_string("AC_Strategy").value(), "PJ");
  EXPECT_EQ(ac->properties.get_string("LB_Strategy").value(), "PJ");
  EXPECT_NE(first.plan.find_instance("T2_S0@P2"), nullptr);

  // Step 2 keeps the swapped strategies and drops every Subtask on P2.
  const config::TimedPlan& second = output.value().schedule[1];
  EXPECT_EQ(second.plan.find_instance("T2_S0@P2"), nullptr);
  EXPECT_EQ(second.plan.find_instance("T0_S0@P2"), nullptr);
  EXPECT_NE(second.plan.find_instance("T2_S0@P0"), nullptr);
  EXPECT_NE(second.plan.find_instance("TE@P2"), nullptr);  // TE/IR stay
  const auto* ac2 = second.plan.find_instance("Central-AC");
  ASSERT_NE(ac2, nullptr);
  EXPECT_EQ(ac2->properties.get_string("AC_Strategy").value(), "PJ");
  EXPECT_FALSE(second.xml.empty());
}

TEST(ReconfigEngineTest, RefusesInvalidModeChangeUpFront) {
  config::EngineInput input;
  input.workload_spec = kSequenceSpec;
  input.explicit_strategies = core::StrategyCombination::parse("T_N_N").value();
  config::ModeChange bad;
  bad.at = Time(Duration::seconds(5).usec());
  bad.strategies = core::StrategyCombination{core::AcStrategy::kPerTask,
                                             core::IrStrategy::kPerJob,
                                             core::LbStrategy::kNone};
  input.mode_changes = {bad};
  const auto output = config::ConfigurationEngine().configure(input);
  EXPECT_FALSE(output.is_ok());
  EXPECT_NE(output.message().find("mode change"), std::string::npos);

  config::EngineInput hostless;
  hostless.workload_spec = kSequenceSpec;
  hostless.explicit_strategies =
      core::StrategyCombination::parse("T_N_N").value();
  config::ModeChange bad_drain;
  bad_drain.at = Time(Duration::seconds(1).usec());
  bad_drain.drain = {ProcessorId(1)};  // hazard-alert stage 0... P1 has
                                       // replicas, but sensor-scan S1 only P1
  hostless.mode_changes = {bad_drain};
  const auto refused = config::ConfigurationEngine().configure(hostless);
  EXPECT_FALSE(refused.is_ok());
  EXPECT_NE(refused.message().find("without any host"), std::string::npos);
}

TEST(ReconfigEngineTest, EmittedScheduleDrivesTheManagerEndToEnd) {
  config::EngineInput input;
  input.workload_spec = kSequenceSpec;
  input.explicit_strategies = core::StrategyCombination::parse("T_N_N").value();
  config::ModeChange swap;
  swap.at = Time(Duration::seconds(2).usec());
  swap.strategies = core::StrategyCombination::parse("J_N_J").value();
  config::ModeChange drain;
  drain.at = Time(Duration::seconds(4).usec());
  drain.drain = {ProcessorId(2)};
  input.mode_changes = {swap, drain};
  const auto output = config::ConfigurationEngine().configure(input);
  ASSERT_TRUE(output.is_ok()) << output.message();

  core::SystemConfig base;
  base.comm_latency = Duration::zero();
  auto launched = config::ConfigurationEngine::launch(output.value(), base);
  ASSERT_TRUE(launched.is_ok()) << launched.message();
  core::SystemRuntime& runtime = *launched.value();

  reconfig::ReconfigurationManager manager(runtime);
  for (const config::TimedPlan& step : output.value().schedule) {
    ASSERT_TRUE(
        manager.schedule_plan(step.at, step.plan, step.label).is_ok());
  }
  Rng arrival_rng(7);
  const Time horizon(Duration::seconds(8).usec());
  RTCM_EXPECT_OK(runtime.inject_arrivals(
      workload::generate_arrivals(runtime.tasks(), horizon, arrival_rng)));
  runtime.run_until(horizon + Duration::seconds(6));

  EXPECT_EQ(manager.applied_count(), 2u);
  EXPECT_EQ(manager.drained(), (std::set<ProcessorId>{ProcessorId(2)}));
  EXPECT_EQ(runtime.admission_control()->ac_strategy(),
            core::AcStrategy::kPerJob);
  const auto& total = runtime.metrics().total();
  EXPECT_EQ(total.deadline_misses, 0u);
  EXPECT_EQ(total.arrivals, total.releases + total.rejections);
  EXPECT_EQ(total.releases, total.completions);
  EXPECT_GT(total.completions, 0u);
}

// --- Determinism and trace golden --------------------------------------------

TEST(ReconfigDeterminismTest, SameScriptSameSeedByteIdenticalTrace) {
  auto run_once = [](std::uint64_t seed) {
    auto tasks = rtcm::testing::make_imbalanced_workload(17);
    core::SystemConfig config;
    config.strategies = core::StrategyCombination::parse("T_T_N").value();
    config.comm_latency = Duration::zero();
    config.enable_trace = true;
    core::SystemRuntime runtime(config, std::move(tasks));
    EXPECT_TRUE(runtime.assemble().is_ok());
    reconfig::ReconfigurationManager manager(runtime);
    const Time horizon(Duration::seconds(6).usec());
    EXPECT_TRUE(manager
                    .schedule_script(rtcm::testing::make_random_reconfig_script(
                        seed, runtime.app_processors(), horizon))
                    .is_ok());
    Rng arrival_rng = Rng(17).fork(1);
    RTCM_EXPECT_OK(runtime.inject_arrivals(
        workload::generate_arrivals(runtime.tasks(), horizon, arrival_rng)));
    runtime.run_until(horizon + Duration::seconds(11));
    return runtime.trace().render();
  };
  const std::string first = run_once(3);
  EXPECT_GT(first.size(), 0u);
  EXPECT_EQ(first, run_once(3));
  EXPECT_NE(first, run_once(4));  // different scripts genuinely differ
}

TEST(ReconfigGoldenTraceTest, ScriptedDrainEventSequence) {
  // One admitted task, one pre-drain job, a scripted drain, one post-drain
  // job: the exact lifecycle including migration, reconfiguration and the
  // deferred quiesce.
  auto runtime = make_runtime("T_N_N", replicated_task(), /*trace=*/true);
  reconfig::ReconfigurationManager manager(*runtime);
  const auto script =
      ReconfigScriptBuilder()
          .drain(Time(Duration::milliseconds(50).usec()), 0)
          .build();
  ASSERT_TRUE(manager.schedule_script(script).is_ok());
  RTCM_EXPECT_OK(runtime->inject_arrival(TaskId(0), Time(0)));
  RTCM_EXPECT_OK(runtime->inject_arrival(
      TaskId(0), Time(Duration::milliseconds(60).usec())));
  runtime->run_until(Time(Duration::milliseconds(200).usec()));

  std::vector<sim::TraceKind> kinds;
  for (const auto& record : runtime->trace().records()) {
    if (record.kind == sim::TraceKind::kIdle) continue;  // per-CPU noise
    kinds.push_back(record.kind);
  }
  const std::vector<sim::TraceKind> expected = {
      // job 0 on P0
      sim::TraceKind::kJobArrival, sim::TraceKind::kAdmissionTest,
      sim::TraceKind::kJobAdmitted, sim::TraceKind::kJobReleased,
      sim::TraceKind::kSubjobComplete, sim::TraceKind::kJobComplete,
      // t=50ms: drain P0 — the migration re-runs admission on the new
      // placement, the reservation moves, then the changeset commits
      sim::TraceKind::kAdmissionTest, sim::TraceKind::kTaskMigrated,
      sim::TraceKind::kReconfigApplied,
      // job 1: immediate release on the migrated placement (P1)
      sim::TraceKind::kJobArrival, sim::TraceKind::kJobReleased,
      sim::TraceKind::kSubjobComplete, sim::TraceKind::kJobComplete,
      // t=150ms: deferred passivation of P0's instances
      sim::TraceKind::kNodeQuiesced,
  };
  EXPECT_EQ(kinds, expected);
}

}  // namespace
}  // namespace rtcm
