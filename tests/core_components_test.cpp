#include <gtest/gtest.h>

#include <memory>

#include "core/runtime.h"
#include "test_helpers.h"

namespace rtcm::core {
namespace {

using rtcm::testing::make_aperiodic;
using rtcm::testing::make_periodic;
using sched::TaskSet;

std::unique_ptr<SystemRuntime> make_runtime(
    const std::string& combo, TaskSet tasks,
    Duration latency = Duration::zero()) {
  SystemConfig config;
  config.strategies = StrategyCombination::parse(combo).value();
  config.comm_latency = latency;
  config.enable_trace = true;
  auto runtime = std::make_unique<SystemRuntime>(config, std::move(tasks));
  const Status s = runtime->assemble();
  EXPECT_TRUE(s.is_ok()) << s.message();
  return runtime;
}

TaskSet one_periodic_two_stage() {
  // 100 ms deadline/period; stages on P0 and P1 at 10 ms each (u = 0.1).
  TaskSet set;
  EXPECT_TRUE(set.add(make_periodic(0, Duration::milliseconds(100),
                                    {{0, 10000}, {1, 10000}}))
                  .is_ok());
  return set;
}

// --- Assembly ----------------------------------------------------------------

TEST(RuntimeAssemblyTest, BuildsExpectedTopology) {
  auto rt = make_runtime("T_T_T", one_periodic_two_stage());
  EXPECT_EQ(rt->app_processors().size(), 2u);
  EXPECT_EQ(rt->task_manager(), ProcessorId(2));  // max app proc + 1
  EXPECT_NE(rt->admission_control(), nullptr);
  EXPECT_NE(rt->load_balancer(), nullptr);
  EXPECT_NE(rt->task_effector(ProcessorId(0)), nullptr);
  EXPECT_NE(rt->idle_resetter(ProcessorId(1)), nullptr);
  // Manager container: AC + LB.
  EXPECT_EQ(rt->container(rt->task_manager()).size(), 2u);
  // P0: TE + IR + stage-0 F/I subtask; P1: TE + IR + stage-1 Last subtask.
  EXPECT_EQ(rt->container(ProcessorId(0)).size(), 3u);
  EXPECT_EQ(rt->container(ProcessorId(1)).size(), 3u);
  EXPECT_NE(rt->container(ProcessorId(0))
                .find_as<FirstIntermediateSubtask>("T0_S0@P0"),
            nullptr);
  EXPECT_NE(rt->container(ProcessorId(1)).find_as<LastSubtask>("T0_S1@P1"),
            nullptr);
}

TEST(RuntimeAssemblyTest, ReplicasGetDuplicateComponents) {
  TaskSet set;
  ASSERT_TRUE(set.add(make_periodic(0, Duration::milliseconds(100),
                                    {{0, 10000, {1}}}))
                  .is_ok());
  auto rt = make_runtime("T_T_T", std::move(set));
  EXPECT_NE(rt->container(ProcessorId(0)).find_as<LastSubtask>("T0_S0@P0"),
            nullptr);
  EXPECT_NE(rt->container(ProcessorId(1)).find_as<LastSubtask>("T0_S0@P1"),
            nullptr);
}

TEST(RuntimeAssemblyTest, RejectsInvalidCombination) {
  SystemConfig config;
  config.strategies =
      StrategyCombination{AcStrategy::kPerTask, IrStrategy::kPerJob,
                          LbStrategy::kNone};
  SystemRuntime runtime(config, one_periodic_two_stage());
  const Status s = runtime.assemble();
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("T_J_N"), std::string::npos);
}

TEST(RuntimeAssemblyTest, RejectsEmptyTaskSet) {
  SystemConfig config;
  SystemRuntime runtime(config, TaskSet{});
  EXPECT_FALSE(runtime.assemble().is_ok());
}

TEST(RuntimeAssemblyTest, RejectsManagerCollision) {
  SystemConfig config;
  config.task_manager = ProcessorId(0);  // hosts a subtask
  SystemRuntime runtime(config, one_periodic_two_stage());
  EXPECT_FALSE(runtime.assemble().is_ok());
}

TEST(RuntimeAssemblyTest, DoubleAssembleRejected) {
  auto rt = make_runtime("T_T_T", one_periodic_two_stage());
  EXPECT_FALSE(rt->assemble().is_ok());
}

TEST(RuntimeAssemblyTest, EdmsPrioritiesExposed) {
  TaskSet set;
  ASSERT_TRUE(set.add(make_periodic(0, Duration::seconds(10), {{0, 1000}}))
                  .is_ok());
  ASSERT_TRUE(
      set.add(make_periodic(1, Duration::seconds(1), {{0, 1000}})).is_ok());
  auto rt = make_runtime("T_T_T", std::move(set));
  EXPECT_EQ(rt->priorities().at(TaskId(1)), Priority(0));
  EXPECT_EQ(rt->priorities().at(TaskId(0)), Priority(1));
}

// --- End-to-end single job ---------------------------------------------------

TEST(PipelineTest, SingleJobFlowsThroughChain) {
  auto rt = make_runtime("J_N_N", one_periodic_two_stage());
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  rt->run_until(Time(Duration::milliseconds(300).usec()));

  const auto& total = rt->metrics().total();
  EXPECT_EQ(total.arrivals, 1u);
  EXPECT_EQ(total.releases, 1u);
  EXPECT_EQ(total.completions, 1u);
  EXPECT_EQ(total.deadline_misses, 0u);
  // Two stages of 10 ms back-to-back: response time ~20 ms.
  EXPECT_NEAR(total.response_ms.mean(), 20.0, 0.5);
  EXPECT_EQ(rt->trace().count(sim::TraceKind::kJobComplete), 1u);
  EXPECT_EQ(rt->trace().count(sim::TraceKind::kDeadlineMiss), 0u);
}

TEST(PipelineTest, ResponseIncludesAdmissionRoundTripLatency) {
  auto rt = make_runtime("J_N_N", one_periodic_two_stage(),
                         Duration::microseconds(322));
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  rt->run_until(Time(Duration::milliseconds(300).usec()));
  // arrival -> AC (322us) -> accept (322us) -> stage0 10ms -> trigger to P1
  // (322us) -> stage1 10ms: ~20.97 ms.
  EXPECT_NEAR(rt->metrics().total().response_ms.mean(), 20.97, 0.2);
}

TEST(PipelineTest, TaskEffectorHoldsUntilAccept) {
  auto rt = make_runtime("J_N_N", one_periodic_two_stage(),
                         Duration::milliseconds(10));
  TaskEffector* te = rt->task_effector(ProcessorId(0));
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  // Run to just after the arrival but before the Accept round trip ends.
  rt->run_until(Time(Duration::milliseconds(5).usec()));
  EXPECT_EQ(te->held_count(), 1u);
  rt->run_until(Time(Duration::milliseconds(25).usec()));
  EXPECT_EQ(te->held_count(), 0u);
  EXPECT_EQ(rt->metrics().total().releases, 1u);
}

// --- AC per Task semantics ---------------------------------------------------

TEST(AcPerTaskTest, ReservesOnceAndBypassesLaterTests) {
  auto rt = make_runtime("T_N_N", one_periodic_two_stage());
  for (int k = 0; k < 5; ++k) {
    RTCM_EXPECT_OK(rt->inject_arrival(
        TaskId(0), Time(Duration::milliseconds(100 * k).usec())));
  }
  rt->run_until(Time(Duration::seconds(1).usec()));

  const auto& counters = rt->admission_control()->counters();
  EXPECT_EQ(counters.admission_tests, 1u);  // only the first arrival
  EXPECT_EQ(rt->admission_control()->state().reservation_count(), 1u);
  EXPECT_EQ(rt->metrics().total().releases, 5u);
  // Jobs after the first released immediately by the TE.
  EXPECT_EQ(rt->task_effector(ProcessorId(0))->immediate_releases(), 4u);
  // Reservation persists: synthetic utilization stays nonzero forever.
  EXPECT_GT(rt->admission_control()->state().ledger().total(ProcessorId(0)),
            0.0);
}

TEST(AcPerTaskTest, RejectedTaskNeverRuns) {
  TaskSet set;
  // Infeasible alone: two stages at utilization 0.5 -> lhs = 1.5.
  ASSERT_TRUE(set.add(make_periodic(0, Duration::milliseconds(100),
                                    {{0, 50000}, {1, 50000}}))
                  .is_ok());
  auto rt = make_runtime("T_N_N", std::move(set));
  for (int k = 0; k < 3; ++k) {
    RTCM_EXPECT_OK(rt->inject_arrival(
        TaskId(0), Time(Duration::milliseconds(100 * k).usec())));
  }
  rt->run_until(Time(Duration::seconds(1).usec()));
  EXPECT_EQ(rt->metrics().total().releases, 0u);
  EXPECT_EQ(rt->metrics().total().rejections, 3u);
  EXPECT_DOUBLE_EQ(rt->metrics().accepted_utilization_ratio(), 0.0);
  // Only the first arrival ran a test; later ones hit the rejected cache.
  EXPECT_EQ(rt->admission_control()->counters().admission_tests, 1u);
}

TEST(AcPerTaskTest, AperiodicJobsStillTestedPerArrival) {
  TaskSet set;
  ASSERT_TRUE(set.add(make_aperiodic(0, Duration::milliseconds(100),
                                     {{0, 10000}}))
                  .is_ok());
  auto rt = make_runtime("T_N_N", std::move(set));
  for (int k = 0; k < 4; ++k) {
    RTCM_EXPECT_OK(rt->inject_arrival(
        TaskId(0), Time(Duration::milliseconds(200 * k).usec())));
  }
  rt->run_until(Time(Duration::seconds(2).usec()));
  EXPECT_EQ(rt->admission_control()->counters().admission_tests, 4u);
  EXPECT_EQ(rt->admission_control()->state().reservation_count(), 0u);
  EXPECT_EQ(rt->metrics().total().releases, 4u);
}

// --- AC per Job semantics ----------------------------------------------------

TEST(AcPerJobTest, EveryJobTested) {
  auto rt = make_runtime("J_N_N", one_periodic_two_stage());
  for (int k = 0; k < 5; ++k) {
    RTCM_EXPECT_OK(rt->inject_arrival(
        TaskId(0), Time(Duration::milliseconds(100 * k).usec())));
  }
  rt->run_until(Time(Duration::seconds(1).usec()));
  EXPECT_EQ(rt->admission_control()->counters().admission_tests, 5u);
  EXPECT_EQ(rt->metrics().total().releases, 5u);
}

TEST(AcPerJobTest, ContributionExpiresAtDeadline) {
  auto rt = make_runtime("J_N_N", one_periodic_two_stage());
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  rt->run_until(Time(Duration::milliseconds(50).usec()));
  // Mid-window: contribution live even though the job completed (~20 ms).
  EXPECT_EQ(rt->metrics().total().completions, 1u);
  EXPECT_GT(rt->admission_control()->state().ledger().total(ProcessorId(0)),
            0.0);
  rt->run_until(Time(Duration::milliseconds(101).usec()));
  EXPECT_DOUBLE_EQ(
      rt->admission_control()->state().ledger().total(ProcessorId(0)), 0.0);
  EXPECT_EQ(rt->admission_control()->state().active_jobs(), 0u);
}

TEST(AcPerJobTest, OverloadSkipsJobsInsteadOfKillingTask) {
  TaskSet set;
  // Two tasks that each need 0.4 of P0: only one can hold the processor
  // per window.  Under per-job AC, a rejected job is skipped but the task
  // keeps being tested — whichever task reaches the AC first in a window
  // wins it.  Alternate the injection order so both tasks win windows.
  ASSERT_TRUE(set.add(make_periodic(0, Duration::milliseconds(100),
                                    {{0, 40000}}))
                  .is_ok());
  ASSERT_TRUE(set.add(make_periodic(1, Duration::milliseconds(100),
                                    {{0, 40000}}))
                  .is_ok());
  auto rt = make_runtime("J_N_N", std::move(set));
  for (int k = 0; k < 10; ++k) {
    const Time t(Duration::milliseconds(100 * k).usec());
    if (k % 2 == 0) {
      RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), t));
      RTCM_EXPECT_OK(rt->inject_arrival(TaskId(1), t));
    } else {
      RTCM_EXPECT_OK(rt->inject_arrival(TaskId(1), t));
      RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), t));
    }
  }
  rt->run_until(Time(Duration::seconds(2).usec()));
  const auto& per_task = rt->metrics().per_task();
  // Both tasks progress (jobs skipped, tasks never blacklisted)...
  EXPECT_EQ(per_task.at(TaskId(0)).releases, 5u);
  EXPECT_EQ(per_task.at(TaskId(1)).releases, 5u);
  EXPECT_EQ(per_task.at(TaskId(0)).rejections, 5u);
  EXPECT_EQ(per_task.at(TaskId(1)).rejections, 5u);
  // ...and every single job went through the admission test.
  EXPECT_EQ(rt->admission_control()->counters().admission_tests, 20u);
}

// --- Idle resetting ----------------------------------------------------------

TEST(IdleResetTest, PerJobResetsPeriodicContributions) {
  auto rt = make_runtime("J_J_N", one_periodic_two_stage());
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  // Job completes at ~20 ms; processors go idle; IR reports; contributions
  // removed well before the 100 ms deadline.
  rt->run_until(Time(Duration::milliseconds(50).usec()));
  EXPECT_DOUBLE_EQ(
      rt->admission_control()->state().ledger().total(ProcessorId(0)), 0.0);
  EXPECT_DOUBLE_EQ(
      rt->admission_control()->state().ledger().total(ProcessorId(1)), 0.0);
  EXPECT_GT(rt->admission_control()->counters().subjobs_reset, 0u);
  EXPECT_GT(rt->metrics().idle_resets(), 0u);
}

TEST(IdleResetTest, PerTaskOnlyResetsAperiodic) {
  TaskSet set;
  ASSERT_TRUE(set.add(make_periodic(0, Duration::milliseconds(100),
                                    {{0, 10000}}))
                  .is_ok());
  ASSERT_TRUE(set.add(make_aperiodic(1, Duration::milliseconds(100),
                                     {{0, 10000}}))
                  .is_ok());
  auto rt = make_runtime("J_T_N", std::move(set));
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(1), Time(0)));
  rt->run_until(Time(Duration::milliseconds(60).usec()));
  // Aperiodic contribution reset; periodic contribution still held until
  // its deadline.
  const double p0 =
      rt->admission_control()->state().ledger().total(ProcessorId(0));
  EXPECT_NEAR(p0, 0.1, 1e-9);  // only the periodic task's 0.1 remains
  EXPECT_EQ(rt->admission_control()->counters().subjobs_reset, 1u);
}

TEST(IdleResetTest, NoneNeverReports) {
  auto rt = make_runtime("J_N_N", one_periodic_two_stage());
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  rt->run_until(Time(Duration::milliseconds(90).usec()));
  EXPECT_EQ(rt->metrics().idle_resets(), 0u);
  EXPECT_EQ(rt->idle_resetter(ProcessorId(0))->reports_pushed(), 0u);
  // Contribution still present until deadline expiry.
  EXPECT_GT(rt->admission_control()->state().ledger().total(ProcessorId(0)),
            0.0);
}

TEST(IdleResetTest, ResetEnablesMoreAdmissions) {
  // Two tasks each needing most of P0; with per-job AC + IR, the second
  // task's job passes once the first completed and was reset.
  TaskSet set;
  ASSERT_TRUE(set.add(make_periodic(0, Duration::milliseconds(1000),
                                    {{0, 300000}}))
                  .is_ok());
  ASSERT_TRUE(set.add(make_periodic(1, Duration::milliseconds(1000),
                                    {{0, 300000}}))
                  .is_ok());

  // Without IR: the second task arriving mid-window is rejected.
  {
    auto rt = make_runtime("J_N_N", set);
    RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
    RTCM_EXPECT_OK(rt->inject_arrival(
        TaskId(1), Time(Duration::milliseconds(500).usec())));
    rt->run_until(Time(Duration::seconds(1).usec()));
    EXPECT_EQ(rt->metrics().per_task().at(TaskId(1)).rejections, 1u);
  }
  // With IR per job: task 0's job completed at 300 ms and was reset, so
  // task 1 admits at 500 ms.
  {
    auto rt = make_runtime("J_J_N", set);
    RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
    RTCM_EXPECT_OK(rt->inject_arrival(
        TaskId(1), Time(Duration::milliseconds(500).usec())));
    rt->run_until(Time(Duration::seconds(1).usec()));
    EXPECT_EQ(rt->metrics().per_task().at(TaskId(1)).releases, 1u);
  }
}

// --- Load balancing ----------------------------------------------------------

TEST(LoadBalancingTest, ReallocatesToIdleReplica) {
  TaskSet set;
  // Task 0 occupies P0 heavily; task 1's only stage prefers P0 but has a
  // replica on P1.
  ASSERT_TRUE(set.add(make_periodic(0, Duration::milliseconds(100),
                                    {{0, 40000}}))
                  .is_ok());
  ASSERT_TRUE(set.add(make_periodic(1, Duration::milliseconds(100),
                                    {{0, 30000, {1}}}))
                  .is_ok());
  auto rt = make_runtime("J_N_T", std::move(set));
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  RTCM_EXPECT_OK(rt->inject_arrival(
      TaskId(1), Time(Duration::milliseconds(1).usec())));
  rt->run_until(Time(Duration::milliseconds(90).usec()));
  EXPECT_EQ(rt->metrics().total().releases, 2u);
  // Task 1 ran on its replica processor P1 (re-allocation).
  EXPECT_GE(rt->trace().count(sim::TraceKind::kReallocation), 1u);
  EXPECT_GT(rt->admission_control()->state().ledger().total(ProcessorId(1)),
            0.0);
  EXPECT_GT(rt->load_balancer()->location_calls(), 0u);
}

TEST(LoadBalancingTest, PerTaskPlanIsFrozen) {
  TaskSet set;
  ASSERT_TRUE(set.add(make_periodic(0, Duration::milliseconds(100),
                                    {{0, 10000, {1}}}))
                  .is_ok());
  auto rt = make_runtime("J_N_T", std::move(set));
  for (int k = 0; k < 4; ++k) {
    RTCM_EXPECT_OK(rt->inject_arrival(
        TaskId(0), Time(Duration::milliseconds(100 * k).usec())));
  }
  rt->run_until(Time(Duration::milliseconds(450).usec()));
  // The plan was proposed exactly once (first arrival) and reused.
  EXPECT_EQ(rt->load_balancer()->location_calls(), 1u);
  EXPECT_EQ(rt->metrics().total().releases, 4u);
}

TEST(LoadBalancingTest, PerJobProposesEveryJob) {
  TaskSet set;
  ASSERT_TRUE(set.add(make_periodic(0, Duration::milliseconds(100),
                                    {{0, 10000, {1}}}))
                  .is_ok());
  auto rt = make_runtime("J_N_J", std::move(set));
  for (int k = 0; k < 4; ++k) {
    RTCM_EXPECT_OK(rt->inject_arrival(
        TaskId(0), Time(Duration::milliseconds(100 * k).usec())));
  }
  rt->run_until(Time(Duration::milliseconds(450).usec()));
  EXPECT_EQ(rt->load_balancer()->location_calls(), 4u);
}

TEST(LoadBalancingTest, ReservationMoveUnderAcTaskLbJob) {
  TaskSet set;
  // Task 0: stage on P0 with replica on P1.  Task 1 later loads P0, so the
  // per-job LB proposal for task 0's next job prefers P1 and the standing
  // reservation moves.
  ASSERT_TRUE(set.add(make_periodic(0, Duration::milliseconds(100),
                                    {{0, 10000, {1}}}))
                  .is_ok());
  ASSERT_TRUE(set.add(make_periodic(1, Duration::milliseconds(100),
                                    {{0, 30000}}))
                  .is_ok());
  auto rt = make_runtime("T_N_J", std::move(set));
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  RTCM_EXPECT_OK(rt->inject_arrival(
      TaskId(1), Time(Duration::milliseconds(10).usec())));
  RTCM_EXPECT_OK(rt->inject_arrival(
      TaskId(0), Time(Duration::milliseconds(100).usec())));
  rt->run_until(Time(Duration::milliseconds(190).usec()));
  EXPECT_GE(rt->admission_control()->counters().reservation_moves, 1u);
  // The reservation now sits on P1.
  const auto reservation =
      rt->admission_control()->state().reservation(TaskId(0));
  ASSERT_TRUE(reservation.has_value());
  EXPECT_EQ(reservation->placement[0], ProcessorId(1));
}

// --- EDMS execution ----------------------------------------------------------

TEST(EdmsExecutionTest, ShorterDeadlineTaskPreempts) {
  TaskSet set;
  // Long task (low priority) occupies P0 for 50 ms; short-deadline task
  // arrives mid-execution and must preempt.
  ASSERT_TRUE(set.add(make_periodic(0, Duration::seconds(1), {{0, 50000}}))
                  .is_ok());
  ASSERT_TRUE(set.add(make_periodic(1, Duration::milliseconds(30),
                                    {{0, 5000}}))
                  .is_ok());
  auto rt = make_runtime("J_N_N", std::move(set));
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  RTCM_EXPECT_OK(rt->inject_arrival(
      TaskId(1), Time(Duration::milliseconds(10).usec())));
  rt->run_until(Time(Duration::milliseconds(200).usec()));
  EXPECT_EQ(rt->metrics().total().deadline_misses, 0u);
  EXPECT_EQ(rt->processor(ProcessorId(0)).stats().preemptions, 1u);
  // Short task completed at ~15 ms, well inside its 30 ms deadline.
  EXPECT_NEAR(rt->metrics().per_task().at(TaskId(1)).response_ms.mean(), 5.0,
              1.0);
}

// --- Metrics -----------------------------------------------------------------

TEST(MetricsTest, AcceptedUtilizationRatioWeighsByUtilization) {
  TaskSet set;
  // Task 0: utilization 0.4; task 1: utilization 0.1, both single-stage
  // but task 1 on another processor.
  ASSERT_TRUE(set.add(make_periodic(0, Duration::milliseconds(100),
                                    {{0, 40000}}))
                  .is_ok());
  ASSERT_TRUE(set.add(make_periodic(1, Duration::milliseconds(100),
                                    {{1, 10000}}))
                  .is_ok());
  auto rt = make_runtime("J_N_N", std::move(set));
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(1), Time(0)));
  rt->run_until(Time(Duration::milliseconds(90).usec()));
  EXPECT_DOUBLE_EQ(rt->metrics().accepted_utilization_ratio(), 1.0);
  EXPECT_NEAR(rt->metrics().total().released_utilization, 0.5, 1e-9);
}

// --- Runtime reconfiguration (paper §5) --------------------------------------

TEST(RuntimeReconfigurationTest, TaskEffectorModeChangesAtRuntime) {
  // Start in PJ mode under AC per Task; every job does the AC round trip.
  // Reconfigure the active TE to PT: jobs of the already-admitted task now
  // release immediately.
  auto rt = make_runtime("T_N_N", one_periodic_two_stage());
  TaskEffector* te = rt->task_effector(ProcessorId(0));
  ccm::AttributeMap to_pj;
  to_pj.set_string(TaskEffector::kModeAttr, "PJ");
  ASSERT_TRUE(te->configure(to_pj).is_ok());

  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  RTCM_EXPECT_OK(rt->inject_arrival(
      TaskId(0), Time(Duration::milliseconds(100).usec())));
  rt->run_until(Time(Duration::milliseconds(150).usec()));
  EXPECT_EQ(te->immediate_releases(), 0u);  // PJ: both did the round trip

  ccm::AttributeMap to_pt;
  to_pt.set_string(TaskEffector::kModeAttr, "PT");
  ASSERT_TRUE(te->configure(to_pt).is_ok());
  EXPECT_EQ(te->state(), ccm::LifecycleState::kActive);

  // The first post-switch arrival still does the round trip (the TE only
  // learns the cached placement from that Accept); the next one is
  // released immediately.
  RTCM_EXPECT_OK(rt->inject_arrival(
      TaskId(0), Time(Duration::milliseconds(200).usec())));
  RTCM_EXPECT_OK(rt->inject_arrival(
      TaskId(0), Time(Duration::milliseconds(300).usec())));
  rt->run_until(Time(Duration::milliseconds(350).usec()));
  EXPECT_EQ(te->immediate_releases(), 1u);
  EXPECT_EQ(rt->metrics().total().releases, 4u);
}

TEST(RuntimeReconfigurationTest, AcSwapsStrategiesButRefusesAnalysisSwitch) {
  // The reconfiguration engine swaps AC/LB strategy attributes on a live AC;
  // the analysis (AUB vs DS) carries admission state and stays frozen.
  auto rt = make_runtime("T_N_N", one_periodic_two_stage());
  ccm::AttributeMap attrs;
  attrs.set_string(AdmissionControl::kAcStrategyAttr, "PJ");
  ASSERT_TRUE(rt->admission_control()->configure(attrs).is_ok());
  EXPECT_EQ(rt->admission_control()->ac_strategy(), AcStrategy::kPerJob);

  ccm::AttributeMap analysis;
  analysis.set_string(AdmissionControl::kAnalysisAttr, "DS");
  const Status s = rt->admission_control()->configure(analysis);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("live"), std::string::npos);
}

TEST(MetricsTest, RenderContainsHeadlineNumbers) {
  auto rt = make_runtime("J_N_N", one_periodic_two_stage());
  RTCM_EXPECT_OK(rt->inject_arrival(TaskId(0), Time(0)));
  rt->run_until(Time(Duration::milliseconds(90).usec()));
  const std::string text = rt->metrics().render();
  EXPECT_NE(text.find("accepted utilization ratio"), std::string::npos);
  EXPECT_NE(text.find("T0"), std::string::npos);
}

// --- AC counter conservation under bursty overload ---------------------------

TEST(AcCountersTest, CountersPartitionArrivalsUnderBursts) {
  // Every arrival reaching the AC is exactly one of: freshly tested and
  // admitted, freshly tested and rejected, or auto-accepted off a standing
  // reservation.  A bursty aperiodic storm on top of a periodic task (AC per
  // Task: tested once, then auto-accepted) must keep that partition exact.
  // LB per Job makes the TE forward *every* arrival to the AC (under LB=N
  // it releases admitted periodic jobs locally, bypassing the counters).
  TaskSet set;
  ASSERT_TRUE(set.add(make_periodic(0, Duration::milliseconds(200),
                                    {{0, 20000}}))
                  .is_ok());
  ASSERT_TRUE(set.add(make_aperiodic(1, Duration::milliseconds(250),
                                     {{1, 30000}}))
                  .is_ok());
  auto rt = make_runtime("T_T_J", std::move(set));
  // Periodic background...
  for (int k = 0; k < 10; ++k) {
    RTCM_EXPECT_OK(rt->inject_arrival(
        TaskId(0), Time(Duration::milliseconds(200 * k).usec())));
  }
  // ...plus aperiodic bursts.
  rtcm::testing::BurstShape burst;
  burst.bursts = 2;
  burst.jobs_per_burst = 20;
  burst.intra_gap = Duration::milliseconds(1);
  burst.inter_gap = Duration::seconds(1);
  RTCM_EXPECT_OK(rt->inject_arrivals(
      rtcm::testing::make_bursty_arrivals(TaskId(1), burst)));
  rt->run_until(Time(Duration::seconds(4).usec()));

  const auto& counters = rt->admission_control()->counters();
  const auto& total = rt->metrics().total();
  EXPECT_EQ(total.arrivals, 50u);
  // `admits` counts every accept (auto-accepts included), so admits and
  // rejects partition the arrivals exactly.
  EXPECT_EQ(counters.admits + counters.rejects, total.arrivals);
  EXPECT_EQ(counters.admits, total.releases);
  EXPECT_EQ(counters.rejects, total.rejections);
  // The periodic task was tested exactly once (AC per Task); every
  // aperiodic arrival was tested individually.
  EXPECT_EQ(counters.admission_tests, 1u + 40u);
  EXPECT_EQ(counters.auto_accepts, 9u);
  EXPECT_GT(counters.rejects, 0u);
  EXPECT_EQ(total.deadline_misses, 0u);
}

}  // namespace
}  // namespace rtcm::core
