// Whole-system integration tests: DAnCE-launched vs directly-assembled
// equivalence, and the paper's Figure 5 / Figure 6 orderings on reduced
// workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "config/engine.h"
#include "config/plan_builder.h"
#include "config/workload_spec.h"
#include "core/runtime.h"
#include "dance/engine.h"
#include "dance/plan_xml.h"
#include "test_helpers.h"
#include "workload/arrival.h"
#include "workload/generator.h"

namespace rtcm {
namespace {

struct RunResult {
  double ratio = 0;
  std::uint64_t releases = 0;
  std::uint64_t rejections = 0;
  std::uint64_t completions = 0;
  std::uint64_t misses = 0;

  bool operator==(const RunResult&) const = default;
};

RunResult drive(core::SystemRuntime& rt, std::uint64_t seed, Time horizon) {
  Rng arrival_rng = Rng(seed).fork(1);
  RTCM_EXPECT_OK(rt.inject_arrivals(
      workload::generate_arrivals(rt.tasks(), horizon, arrival_rng)));
  rt.run_until(horizon + Duration::seconds(15));
  RunResult result;
  result.ratio = rt.metrics().accepted_utilization_ratio();
  result.releases = rt.metrics().total().releases;
  result.rejections = rt.metrics().total().rejections;
  result.completions = rt.metrics().total().completions;
  result.misses = rt.metrics().total().deadline_misses;
  return result;
}

RunResult run_direct(const std::string& combo, std::uint64_t seed,
                     const workload::WorkloadShape& shape, Time horizon) {
  Rng rng(seed);
  auto tasks = workload::generate_workload(shape, rng);
  core::SystemConfig config;
  config.strategies = core::StrategyCombination::parse(combo).value();
  core::SystemRuntime rt(config, std::move(tasks));
  EXPECT_TRUE(rt.assemble().is_ok());
  return drive(rt, seed, horizon);
}

// --- DAnCE pipeline equivalence ----------------------------------------------

TEST(DanceEquivalenceTest, PlanLaunchedSystemMatchesDirectAssembly) {
  const Time horizon(Duration::seconds(30).usec());
  for (const std::string combo : {"T_T_T", "J_J_J", "J_N_T"}) {
    const std::uint64_t seed = 23;
    const RunResult direct =
        run_direct(combo, seed, workload::random_workload_shape(), horizon);

    // Same workload through the full §6 pipeline: plan -> XML -> parse ->
    // ExecutionManager -> containers.
    Rng rng(seed);
    auto tasks =
        workload::generate_workload(workload::random_workload_shape(), rng);
    config::PlanBuilderInput plan_input;
    plan_input.tasks = &tasks;
    plan_input.strategies = core::StrategyCombination::parse(combo).value();
    plan_input.task_manager = ProcessorId(5);
    const auto plan = config::build_deployment_plan(plan_input);
    ASSERT_TRUE(plan.is_ok()) << plan.message();
    const std::string xml = dance::plan_to_xml(plan.value());

    core::SystemConfig config;
    config.strategies = plan_input.strategies;
    config.task_manager = ProcessorId(5);
    core::SystemRuntime rt(config, std::move(tasks));
    ASSERT_TRUE(rt.assemble_infrastructure().is_ok());
    const auto report = dance::PlanLauncher().launch_from_xml(
        xml, [&rt](ProcessorId node) { return rt.find_container(node); },
        rt.factory());
    ASSERT_TRUE(report.is_ok()) << report.message();
    ASSERT_TRUE(rt.finalize_deployment().is_ok());

    const RunResult launched = drive(rt, seed, horizon);
    EXPECT_EQ(direct, launched) << combo;
  }
}

TEST(DanceEquivalenceTest, EngineLaunchMatchesDirectAssembly) {
  // A fixed workload through the configuration engine (explicit strategies).
  constexpr const char* kSpec =
      "task a periodic deadline=400ms period=400ms\n"
      "  subtask exec=30ms primary=P0 replicas=P1\n"
      "  subtask exec=20ms primary=P1\n"
      "task b aperiodic deadline=300ms mean_interarrival=600ms\n"
      "  subtask exec=25ms primary=P1 replicas=P0\n";
  config::EngineInput input;
  input.workload_spec = kSpec;
  input.explicit_strategies = core::StrategyCombination::parse("J_J_T").value();
  const auto out = config::ConfigurationEngine().configure(input);
  ASSERT_TRUE(out.is_ok()) << out.message();

  core::SystemConfig base;
  auto launched_rt = config::ConfigurationEngine::launch(out.value(), base);
  ASSERT_TRUE(launched_rt.is_ok()) << launched_rt.message();
  const Time horizon(Duration::seconds(20).usec());
  const RunResult launched = drive(*launched_rt.value(), 99, horizon);

  auto tasks = config::parse_workload_spec(kSpec);
  ASSERT_TRUE(tasks.is_ok());
  core::SystemConfig config;
  config.strategies = core::StrategyCombination::parse("J_J_T").value();
  core::SystemRuntime direct_rt(config, std::move(tasks).value());
  ASSERT_TRUE(direct_rt.assemble().is_ok());
  const RunResult direct = drive(direct_rt, 99, horizon);

  EXPECT_EQ(direct, launched);
}

// --- Deadline-guarantee property (AUB correctness end to end) ----------------

class DeadlineGuaranteeTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(DeadlineGuaranteeTest, NoAdmittedJobMissesItsDeadline) {
  const auto& [combo, seed] = GetParam();
  const RunResult result =
      run_direct(combo, seed, workload::random_workload_shape(),
                 Time(Duration::seconds(20).usec()));
  EXPECT_EQ(result.misses, 0u);
  EXPECT_EQ(result.releases, result.completions);
  EXPECT_GT(result.releases, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    CombosAndSeeds, DeadlineGuaranteeTest,
    ::testing::Combine(::testing::Values("T_N_N", "T_T_T", "J_N_J", "J_J_N",
                                         "J_J_J"),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::uint64_t>>&
           info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --- Jittered network --------------------------------------------------------

TEST(JitteredNetworkTest, SystemHealthyUnderLatencyVariance) {
  // Base 322 us + up to 200 us per-message jitter.  Paper-scale deadlines
  // (>= 250 ms) absorb the variance: admitted jobs still meet deadlines.
  Rng rng(31);
  auto tasks =
      workload::generate_workload(workload::random_workload_shape(), rng);
  core::SystemConfig config;
  config.strategies = core::StrategyCombination::parse("J_J_T").value();
  config.comm_jitter = Duration::microseconds(200);
  config.comm_jitter_seed = 31;
  core::SystemRuntime rt(config, std::move(tasks));
  ASSERT_TRUE(rt.assemble().is_ok());
  const RunResult result = drive(rt, 31, Time(Duration::seconds(30).usec()));
  EXPECT_GT(result.releases, 0u);
  EXPECT_EQ(result.misses, 0u);
  EXPECT_EQ(result.releases, result.completions);
}

TEST(JitteredNetworkTest, JitterModelDrivenSimulationMeetsDeadlines) {
  // Drive a full simulation whose network uses UniformJitterLatency by
  // constructing the pieces directly (the SystemConfig path uses a constant
  // model; this exercises the pluggable LatencyModel seam end to end).
  sim::Simulator simulator;
  sim::Network network(simulator,
                       std::make_unique<sim::UniformJitterLatency>(
                           Duration::microseconds(322),
                           Duration::microseconds(200), /*seed=*/5));
  Time delivered_min = Time::max();
  Time delivered_max = Time::epoch();
  int count = 0;
  for (int i = 0; i < 200; ++i) {
    network.send(ProcessorId(0), ProcessorId(1), [&] {
      delivered_min = std::min(delivered_min, simulator.now());
      delivered_max = std::max(delivered_max, simulator.now());
      ++count;
    });
  }
  simulator.run_all();
  EXPECT_EQ(count, 200);
  EXPECT_GE(delivered_min, Time(322));
  EXPECT_LE(delivered_max, Time(522));
  EXPECT_GT(delivered_max - delivered_min, Duration(50));  // jitter visible
}

// --- Figure 5 orderings (reduced) --------------------------------------------

double mean_ratio(const std::string& combo,
                  const workload::WorkloadShape& shape, int seeds) {
  double sum = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    sum += run_direct(combo, static_cast<std::uint64_t>(seed), shape,
                      Time(Duration::seconds(60).usec()))
               .ratio;
  }
  return sum / seeds;
}

TEST(Figure5ShapeTest, IrPerJobSignificantlyOutperforms) {
  const auto shape = workload::random_workload_shape();
  const double ir_none = mean_ratio("J_N_N", shape, 5);
  const double ir_task = mean_ratio("J_T_N", shape, 5);
  const double ir_job = mean_ratio("J_J_N", shape, 5);
  // Paper: enabling idle resetting increases accepted utilization, and IR
  // per job significantly outperforms IR per task and no IR.
  EXPECT_GE(ir_task, ir_none - 0.02);
  EXPECT_GT(ir_job, ir_none + 0.05);
  EXPECT_GT(ir_job, ir_task + 0.05);
}

TEST(Figure5ShapeTest, BalancedWorkloadMakesLbSecondary) {
  const auto shape = workload::random_workload_shape();
  // Paper: "the difference is small when we only change the configuration
  // of the LB component" on balanced random workloads.
  const double lb_none = mean_ratio("J_J_N", shape, 5);
  const double lb_task = mean_ratio("J_J_T", shape, 5);
  const double lb_job = mean_ratio("J_J_J", shape, 5);
  EXPECT_NEAR(lb_task, lb_none, 0.12);
  EXPECT_NEAR(lb_job, lb_none, 0.12);
}

// --- Figure 6 orderings (reduced) --------------------------------------------

TEST(Figure6ShapeTest, LoadBalancingWinsOnImbalancedWorkloads) {
  const auto shape = workload::imbalanced_workload_shape();
  // Paper: LB per task provides a significant improvement over no LB...
  for (const std::string prefix : {"T_N", "J_J"}) {
    const double none = mean_ratio(prefix + "_N", shape, 5);
    const double task = mean_ratio(prefix + "_T", shape, 5);
    EXPECT_GT(task, none + 0.05) << prefix;
    // ...and there is not much difference between LB per task and per job.
    const double job = mean_ratio(prefix + "_J", shape, 5);
    EXPECT_NEAR(job, task, 0.12) << prefix;
  }
}

// --- Poisson background plus bursty foreground -------------------------------

TEST(MixedLoadTest, BurstOverloadOnTopOfPoissonBackgroundStaysSafe) {
  // An imbalanced workload driving normal Poisson/periodic traffic, with one
  // aperiodic task additionally slammed by bursts on top of its own stream:
  // conservation and the no-miss guarantee must survive the combination.
  auto tasks = rtcm::testing::make_imbalanced_workload(55);
  TaskId bursty_task;
  for (const sched::TaskSpec& t : tasks.tasks()) {
    if (t.kind == sched::TaskKind::kAperiodic) {
      bursty_task = t.id;
      break;
    }
  }
  ASSERT_TRUE(bursty_task.valid());

  core::SystemConfig config;
  config.strategies = core::StrategyCombination::parse("J_J_J").value();
  core::SystemRuntime rt(config, std::move(tasks));
  ASSERT_TRUE(rt.assemble().is_ok());

  const Time horizon(Duration::seconds(10).usec());
  Rng arrival_rng = Rng(55).fork(1);
  auto trace = workload::generate_arrivals(rt.tasks(), horizon, arrival_rng);
  rtcm::testing::BurstShape burst;
  burst.bursts = 5;
  burst.jobs_per_burst = 15;
  burst.intra_gap = Duration::milliseconds(1);
  burst.inter_gap = Duration::seconds(2);
  const auto bursts = rtcm::testing::make_bursty_arrivals(bursty_task, burst);
  const std::uint64_t background = trace.size();
  trace.insert(trace.end(), bursts.begin(), bursts.end());
  std::stable_sort(trace.begin(), trace.end(),
                   [](const core::Arrival& a, const core::Arrival& b) {
                     return a.time < b.time;
                   });

  RTCM_EXPECT_OK(rt.inject_arrivals(trace));
  rt.run_until(horizon + Duration::seconds(15));
  const auto& total = rt.metrics().total();
  EXPECT_EQ(total.arrivals, background + 75u);
  EXPECT_EQ(total.arrivals, total.releases + total.rejections);
  EXPECT_EQ(total.releases, total.completions);
  EXPECT_EQ(total.deadline_misses, 0u);
  EXPECT_GT(total.rejections, 0u);  // the bursts must overload admission
}

}  // namespace
}  // namespace rtcm
