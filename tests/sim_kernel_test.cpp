// Cross-kernel equivalence suite: the timer wheel against the 4-ary heap.
//
// The heap kernel is the deterministic reference oracle; the wheel must be
// indistinguishable from it through the public Simulator API.  These tests
// drive both kernels through identical randomized schedule / cancel /
// reschedule / run churn — including same-instant ties, events scheduled
// from inside callbacks, and horizons beyond the wheel's 64^6-usec span
// (the overflow heap) — and require byte-identical dispatch sequences,
// identical now() trajectories, and byte-identical full-middleware traces.
//
// Also here: the dead-entry regression tests.  cancel()/reschedule() used
// to leave dead entries queued until they surfaced at the front, so a
// reschedule storm against a far-future event grew queue memory and sift
// depth with *total* churn; both kernels now compact once dead entries
// outnumber live ones, and these tests pin the O(live) bound.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/runtime.h"
#include "sim/simulator.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "util/time.h"
#include "workload/arrival.h"
#include "workload/generator.h"

namespace rtcm::sim {
namespace {

constexpr std::int64_t kWheelSpanUsec = 64LL * 64 * 64 * 64 * 64 * 64;

/// One externally-applied operation of the churn script.  Scripts are
/// generated once per seed and replayed verbatim against each kernel, so
/// both simulators see exactly the same call sequence.
struct Op {
  enum Kind { kSchedule, kCancel, kReschedule, kRunUntil, kStep } kind;
  std::int64_t a = 0;  // schedule/reschedule/run_until: time offset
  std::size_t target = 0;  // cancel/reschedule: index into issued handles
  std::uint64_t id = 0;    // schedule: event identity for the dispatch log
};

std::vector<Op> make_script(std::uint64_t seed, int ops) {
  Rng rng(seed);
  std::vector<Op> script;
  script.reserve(static_cast<std::size_t>(ops));
  std::uint64_t next_id = 1;
  std::size_t handles = 0;
  for (int i = 0; i < ops; ++i) {
    const std::int64_t roll = rng.uniform_int(0, 99);
    if (roll < 55 || handles == 0) {
      // Offsets span every wheel level and (rarely) the overflow heap, and
      // land on few enough distinct values to force same-time ties.
      static constexpr std::int64_t kSpans[] = {
          63, 4095, 262143, 16777215, kWheelSpanUsec * 2};
      const auto span =
          kSpans[static_cast<std::size_t>(rng.uniform_int(0, 4)) %
                 (rng.uniform_int(0, 9) == 0 ? 5 : 4)];
      script.push_back({Op::kSchedule, rng.uniform_int(0, span) & ~3LL, 0,
                        next_id++});
      ++handles;
    } else if (roll < 70) {
      script.push_back(
          {Op::kCancel, 0,
           static_cast<std::size_t>(rng.uniform_int(
               0, static_cast<std::int64_t>(handles) - 1))});
    } else if (roll < 85) {
      script.push_back(
          {Op::kReschedule, rng.uniform_int(0, 262143),
           static_cast<std::size_t>(rng.uniform_int(
               0, static_cast<std::int64_t>(handles) - 1))});
    } else if (roll < 95) {
      script.push_back({Op::kRunUntil, rng.uniform_int(0, 100000)});
    } else {
      script.push_back({Op::kStep, rng.uniform_int(1, 16)});
    }
  }
  return script;
}

/// Replay a script and return the dispatch log: (time, id) per executed
/// event, plus a now() sample after every run op.  Callbacks for ids
/// divisible by 7 schedule a child event mid-dispatch, exercising the
/// schedule-at-current-instant path.
std::vector<std::pair<std::int64_t, std::uint64_t>> replay(
    KernelKind kind, const std::vector<Op>& script) {
  Simulator sim(kind);
  std::vector<std::pair<std::int64_t, std::uint64_t>> log;
  std::vector<EventHandle> handles;
  struct Recorder {
    Simulator* sim;
    std::vector<std::pair<std::int64_t, std::uint64_t>>* log;
    std::uint64_t id;
    void operator()() const {
      log->emplace_back(sim->now().usec(), id);
      if (id % 7 == 0) {
        sim->schedule_at(sim->now() + Duration(id % 977),
                         Recorder{sim, log, id + 1000000});
      }
    }
  };
  for (const Op& op : script) {
    switch (op.kind) {
      case Op::kSchedule:
        handles.push_back(sim.schedule_at(sim.now() + Duration(op.a),
                                          Recorder{&sim, &log, op.id}));
        break;
      case Op::kCancel:
        sim.cancel(handles[op.target]);
        break;
      case Op::kReschedule:
        sim.reschedule(handles[op.target], sim.now() + Duration(op.a));
        break;
      case Op::kRunUntil:
        sim.run_until(sim.now() + Duration(op.a));
        log.emplace_back(sim.now().usec(), 0);  // pin the now() trajectory
        break;
      case Op::kStep:
        for (std::int64_t n = 0; n < op.a; ++n) {
          if (!sim.step()) break;
        }
        break;
    }
  }
  sim.run_all();
  log.emplace_back(sim.now().usec(),
                   sim.executed());  // totals must agree too
  EXPECT_EQ(sim.pending(), 0u);
  return log;
}

TEST(CrossKernelOracleTest, RandomChurnDispatchesByteIdentically) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::vector<Op> script = make_script(seed, 600);
    const auto heap_log = replay(KernelKind::kHeap, script);
    const auto wheel_log = replay(KernelKind::kWheel, script);
    ASSERT_EQ(heap_log, wheel_log) << "seed " << seed;
    ASSERT_GT(heap_log.size(), 100u) << "seed " << seed;
  }
}

TEST(CrossKernelOracleTest, OverflowHorizonChurnMatches) {
  // Concentrate on the overflow heap and multi-span jumps: every event is
  // beyond the wheel's span when scheduled.
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    Rng rng(seed);
    std::vector<Op> script;
    std::uint64_t id = 1;
    for (int i = 0; i < 64; ++i) {
      script.push_back({Op::kSchedule,
                        kWheelSpanUsec + rng.uniform_int(0, kWheelSpanUsec * 3),
                        0, id++});
    }
    script.push_back({Op::kRunUntil, kWheelSpanUsec * 2});
    for (int i = 0; i < 64; ++i) {
      script.push_back({Op::kSchedule, rng.uniform_int(0, kWheelSpanUsec * 2),
                        0, id++});
      script.push_back(
          {Op::kReschedule, rng.uniform_int(0, kWheelSpanUsec * 2),
           static_cast<std::size_t>(rng.uniform_int(0, 63))});
    }
    const auto heap_log = replay(KernelKind::kHeap, script);
    const auto wheel_log = replay(KernelKind::kWheel, script);
    ASSERT_EQ(heap_log, wheel_log) << "seed " << seed;
  }
}

TEST(CrossKernelOracleTest, RunUntilLeavesIdenticalNowWithEmptyQueue) {
  for (const KernelKind kind : {KernelKind::kHeap, KernelKind::kWheel}) {
    Simulator sim(kind);
    int fired = 0;
    sim.schedule_at(Time(50), [&] { ++fired; });
    sim.run_until(Time(49));
    EXPECT_EQ(sim.now(), Time(49));
    EXPECT_EQ(fired, 0);
    sim.run_until(Time(50));  // deadline-inclusive dispatch
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), Time(50));
    sim.run_until(Time(123456789));  // idle horizon advance, multi-level
    EXPECT_EQ(sim.now(), Time(123456789));
    // Scheduling relative to the advanced instant must still dispatch in
    // order — the wheel's digit path has to be consistent after the jump.
    std::vector<int> order;
    sim.schedule_at(sim.now() + Duration(3), [&] { order.push_back(3); });
    sim.schedule_at(sim.now() + Duration(1), [&] { order.push_back(1); });
    sim.schedule_at(sim.now() + Duration(2), [&] { order.push_back(2); });
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  }
}

// --- full-middleware byte-identity ------------------------------------------

TEST(CrossKernelOracleTest, EndToEndRenderedTraceBytesMatchHeapOracle) {
  auto run_once = [](KernelKind kind) {
    Rng rng(31);
    auto tasks =
        workload::generate_workload(workload::random_workload_shape(), rng);
    core::SystemConfig config;
    config.strategies = core::StrategyCombination::parse("J_J_J").value();
    config.comm_jitter = Duration::microseconds(200);
    config.comm_jitter_seed = 9;
    config.lb_policy = "random";
    config.lb_seed = 4;
    config.enable_trace = true;
    config.kernel = kind;
    core::SystemRuntime runtime(config, std::move(tasks));
    EXPECT_TRUE(runtime.assemble().is_ok());
    Rng arrival_rng = rng.fork(1);
    const Time horizon(Duration::seconds(8).usec());
    RTCM_EXPECT_OK(runtime.inject_arrivals(
        workload::generate_arrivals(runtime.tasks(), horizon, arrival_rng)));
    runtime.run_until(horizon + Duration::seconds(11));
    return runtime.trace().render();
  };
  const std::string heap_trace = run_once(KernelKind::kHeap);
  const std::string wheel_trace = run_once(KernelKind::kWheel);
  EXPECT_GT(heap_trace.size(), 0u);
  EXPECT_EQ(heap_trace, wheel_trace);
}

// --- dead-entry compaction regression ----------------------------------------

TEST(CompactionRegressionTest, RescheduleStormKeepsQueueMemoryBounded) {
  // The original heap kernel kept every dead entry until it surfaced at the
  // front: 10^6 reschedules of one far-future event stored ~10^6 entries.
  // With compaction, stored entries stay O(live) — here live is 1, so the
  // queue may never hold more than the sweep threshold plus one storm's
  // worth of dead entries between sweeps.
  for (const KernelKind kind : {KernelKind::kHeap, KernelKind::kWheel}) {
    Simulator sim(kind);
    int fired = 0;
    EventHandle h =
        sim.schedule_at(sim.now() + Duration(1 << 30), [&] { ++fired; });
    std::size_t max_entries = 0;
    for (int i = 0; i < 1000000; ++i) {
      ASSERT_TRUE(sim.reschedule(h, sim.now() + Duration((1 << 30) + i)));
      max_entries = std::max(max_entries, sim.queue_entries());
    }
    EXPECT_LE(max_entries, 1024u);  // vs ~10^6 without compaction
    EXPECT_EQ(sim.pending(), 1u);
    sim.run_all();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.queue_entries(), 0u);
  }
}

TEST(CompactionRegressionTest, CancelStormKeepsQueueMemoryBounded) {
  for (const KernelKind kind : {KernelKind::kHeap, KernelKind::kWheel}) {
    Simulator sim(kind);
    std::size_t max_entries = 0;
    for (int round = 0; round < 64; ++round) {
      std::vector<EventHandle> handles;
      for (int i = 0; i < 1024; ++i) {
        handles.push_back(
            sim.schedule_at(sim.now() + Duration(1 + i), [] {}));
      }
      for (EventHandle& h : handles) EXPECT_TRUE(sim.cancel(h));
      max_entries = std::max(max_entries, sim.queue_entries());
    }
    // 64 rounds x 1024 cancels must not accumulate: the bound is one
    // round's storm plus the sweep threshold, not 65536.
    EXPECT_LE(max_entries, 4096u);
    EXPECT_EQ(sim.pending(), 0u);
    sim.run_all();
    EXPECT_EQ(sim.queue_entries(), 0u);
  }
}

// The compacted front must still dispatch in exact (time, seq) order: churn
// a mix of survivors and cancelled events past the sweep threshold, then
// check the survivors fire in schedule order.
TEST(CompactionRegressionTest, CompactionPreservesDispatchOrder) {
  for (const KernelKind kind : {KernelKind::kHeap, KernelKind::kWheel}) {
    Simulator sim(kind);
    std::vector<std::uint64_t> fired;
    std::vector<EventHandle> doomed;
    for (std::uint64_t i = 0; i < 2000; ++i) {
      const Time at = sim.now() + Duration(static_cast<std::int64_t>(
                                       1000 + (i * 37) % 5000));
      if (i % 3 == 0) {
        sim.schedule_at(at, [&fired, i] { fired.push_back(i); });
      } else {
        doomed.push_back(sim.schedule_at(at, [] { ADD_FAILURE(); }));
      }
    }
    for (EventHandle& h : doomed) EXPECT_TRUE(sim.cancel(h));
    sim.run_all();
    EXPECT_EQ(fired.size(), 667u);
    // Same (time, seq) comparator the kernels use: time ascending, then
    // insertion order.
    EXPECT_TRUE(std::is_sorted(
        fired.begin(), fired.end(), [](std::uint64_t a, std::uint64_t b) {
          const auto ta = 1000 + (a * 37) % 5000;
          const auto tb = 1000 + (b * 37) % 5000;
          return ta != tb ? ta < tb : a < b;
        }));
  }
}

}  // namespace
}  // namespace rtcm::sim
