// Equivalence and invariant tests for the struct-of-arrays storage
// primitives behind the admission book of record (util/slab.h,
// util/arena.h, util/small_vec.h) and for the book itself run against its
// std::map-backed shadow oracle.
//
// The slab/arena/small-vec trio replaces std::map nodes with dense columns;
// these tests pin the behavioural contract of each piece against a
// straightforward reference (std::unordered_map, std::vector) under
// randomized churn, and the final test drives SchedulingState with
// book_oracle=true so the ShadowBook cross-check (which aborts on
// divergence) runs over a workload with heavy slot reuse and swap-with-last
// removals.  CI gates on `ctest -R SoaEquivalence` in both the plain and
// the ASan+UBSan jobs (scripts/ci_layer_gates.sh).
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/scheduling_state.h"
#include "test_helpers.h"
#include "util/arena.h"
#include "util/ids.h"
#include "util/slab.h"
#include "util/small_vec.h"
#include "util/time.h"

namespace rtcm {
namespace {

TEST(SoaEquivalence, ArenaAlignmentAndDedicatedBlocks) {
  util::MonotonicArena arena(1024);
  // Mixed-alignment bumps all land correctly aligned (the arena's
  // guarantee tops out at the fundamental alignment of its new[]'d
  // blocks).
  for (std::size_t align : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                            alignof(std::max_align_t)}) {
    void* p = arena.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
  }
  // A request larger than the block size gets its own block instead of
  // failing or truncating.
  void* big = arena.allocate(4096, 8);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.reserved_bytes(), 4096u + 1024u);
  const std::size_t blocks = arena.block_count();
  // release() drops everything wholesale.
  arena.release();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  EXPECT_EQ(arena.reserved_bytes(), 0u);
  EXPECT_LT(arena.block_count(), blocks);
}

TEST(SoaEquivalence, ArenaDoesNotReuseReleasedOffsetsWithinBlock) {
  util::MonotonicArena arena(256);
  auto* a = arena.allocate_array<std::uint64_t>(4);
  auto* b = arena.allocate_array<std::uint64_t>(4);
  // Monotonic: the second allocation never aliases the first.
  EXPECT_GE(b, a + 4);
  a[0] = 1;
  b[0] = 2;
  EXPECT_EQ(a[0], 1u);
}

TEST(SoaEquivalence, SmallVecMatchesVectorThroughSpill) {
  util::MonotonicArena arena;
  util::SmallVec<std::uint32_t, 4> sv;
  std::vector<std::uint32_t> ref;
  // Grow well past the inline capacity and compare element-for-element at
  // every step, including across the inline->spill boundary.
  for (std::uint32_t i = 0; i < 64; ++i) {
    sv.push_back(i * 3, arena);
    ref.push_back(i * 3);
    ASSERT_EQ(sv.size(), ref.size());
    for (std::uint32_t j = 0; j < ref.size(); ++j) ASSERT_EQ(sv[j], ref[j]);
  }
  EXPECT_GT(arena.allocated_bytes(), 0u);  // it did spill

  // clear() keeps the spilled capacity: refilling allocates nothing more.
  const std::size_t spilled = arena.allocated_bytes();
  sv.clear();
  for (std::uint32_t i = 0; i < 64; ++i) sv.push_back(i, arena);
  EXPECT_EQ(arena.allocated_bytes(), spilled);

  // Moves transfer the spill buffer (rows relocate on swap-with-last).
  util::SmallVec<std::uint32_t, 4> moved(std::move(sv));
  ASSERT_EQ(moved.size(), 64u);
  EXPECT_EQ(moved[63], 63u);
  EXPECT_TRUE(sv.empty());
}

TEST(SoaEquivalence, SlotMapMatchesUnorderedMapUnderChurn) {
  util::IdSlotMap map;
  std::unordered_map<std::int32_t, std::uint32_t> ref;
  Rng rng(11);
  // Insert/erase/update/lookup churn over a key range chosen to force
  // probe-chain collisions and plenty of backshift deletions.
  for (int step = 0; step < 20000; ++step) {
    const auto key = static_cast<std::int32_t>(rng.index(512));
    switch (rng.index(3)) {
      case 0:
        if (!ref.contains(key)) {
          const auto slot = static_cast<std::uint32_t>(step);
          map.insert(key, slot);
          ref.emplace(key, slot);
        } else {
          const auto slot = static_cast<std::uint32_t>(step);
          map.update(key, slot);
          ref[key] = slot;
        }
        break;
      case 1:
        ASSERT_EQ(map.erase(key), ref.erase(key) > 0);
        break;
      default:
        break;
    }
    const std::uint32_t got = map.lookup(key);
    const auto it = ref.find(key);
    if (it == ref.end()) {
      ASSERT_EQ(got, util::IdSlotMap::kNoSlot);
    } else {
      ASSERT_EQ(got, it->second);
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  // Full sweep: every surviving key resolves, every other key misses.
  for (std::int32_t key = 0; key < 512; ++key) {
    const auto it = ref.find(key);
    ASSERT_EQ(map.lookup(key),
              it == ref.end() ? util::IdSlotMap::kNoSlot : it->second);
  }
}

TEST(SoaEquivalence, SlabHandlesGoStaleOnRelease) {
  util::SlotAllocator slots;
  const auto [a, fresh_a] = slots.acquire();
  EXPECT_TRUE(fresh_a);
  const std::uint64_t handle_a = slots.handle(a);
  EXPECT_EQ(slots.slot_of(handle_a), a);

  // Releasing invalidates the outstanding handle even after the slot is
  // reacquired under a newer generation.
  slots.release(a);
  EXPECT_EQ(slots.slot_of(handle_a), util::SlotAllocator::kNoSlot);
  const auto [b, fresh_b] = slots.acquire();
  EXPECT_EQ(b, a);  // free list reuses the row
  EXPECT_FALSE(fresh_b);
  EXPECT_EQ(slots.slot_of(handle_a), util::SlotAllocator::kNoSlot);
  EXPECT_EQ(slots.slot_of(slots.handle(b)), b);

  // Inert handles never resolve.
  EXPECT_EQ(slots.slot_of(0), util::SlotAllocator::kNoSlot);
  EXPECT_EQ(slots.live(), 1u);
  EXPECT_EQ(slots.capacity(), 1u);
}

TEST(SoaEquivalence, BookMatchesShadowOracleUnderChurn) {
  // book_oracle=true arms the ShadowBook: every mutation below is mirrored
  // into std::map-backed state with the pre-slab arithmetic and
  // cross-checked (totals bitwise, rows field-for-field); divergence
  // aborts.  The workload leans on slot reuse: expiries out of the middle
  // force swap-with-last moves, resets punch holes in contribution lists,
  // and reservations interleave with jobs on shared processors.
  const sched::TaskSet tasks = rtcm::testing::make_imbalanced_workload(13);
  core::SchedulingState state(nullptr, /*book_oracle=*/true);
  Rng rng(13);

  struct LiveJob {
    JobId job;
    const sched::TaskSpec* spec;
  };
  std::vector<LiveJob> live;
  std::vector<const sched::TaskSpec*> reserved;
  std::int32_t next_job = 0;

  for (int step = 0; step < 1500; ++step) {
    switch (rng.index(5)) {
      case 0:
      case 1: {  // admit
        const sched::TaskSpec& spec = tasks.tasks()[rng.index(tasks.size())];
        std::vector<ProcessorId> placement;
        for (const sched::SubtaskSpec& st : spec.subtasks) {
          placement.push_back(st.primary);
        }
        const JobId job(next_job++);
        state.admit_job(spec, job, placement, Time(step * 1000 + 100000));
        live.push_back({job, &spec});
        break;
      }
      case 2: {  // expire (random position -> swap-with-last move)
        if (live.empty()) break;
        const std::size_t i = rng.index(live.size());
        state.expire_job(live[i].job);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 3: {  // reset one stage
        if (live.empty()) break;
        const LiveJob& pick = live[rng.index(live.size())];
        (void)state.reset_subjob(pick.job,
                                 rng.index(pick.spec->subtasks.size()));
        break;
      }
      default: {  // reserve / release
        const sched::TaskSpec& spec = tasks.tasks()[rng.index(tasks.size())];
        if (state.is_reserved(spec.id)) {
          (void)state.release_reservation(spec);
          std::erase(reserved, &spec);
        } else {
          std::vector<ProcessorId> placement;
          for (const sched::SubtaskSpec& st : spec.subtasks) {
            placement.push_back(st.primary);
          }
          state.reserve_task(spec, placement);
          reserved.push_back(&spec);
        }
        break;
      }
    }
  }

  EXPECT_EQ(state.active_jobs(), live.size());
  EXPECT_EQ(state.reservation_count(), reserved.size());

  // Drain everything; the oracle keeps checking through teardown and the
  // ledger must land exactly at zero.
  for (const LiveJob& j : live) state.expire_job(j.job);
  for (const sched::TaskSpec* spec : reserved) {
    (void)state.release_reservation(*spec);
  }
  EXPECT_EQ(state.active_jobs(), 0u);
  EXPECT_EQ(state.reservation_count(), 0u);
  EXPECT_DOUBLE_EQ(state.ledger().total_all(), 0.0);
}

TEST(SoaEquivalence, BookOracleEnvFlagIsRead) {
  // The env hook mirrors RTCM_CHECK_ADMISSION_ORACLE's contract: set means
  // armed, unset means off (the ctor default routes through it).
  unsetenv("RTCM_CHECK_BOOK_ORACLE");
  EXPECT_FALSE(core::SchedulingState::book_oracle_from_env());
  setenv("RTCM_CHECK_BOOK_ORACLE", "1", 1);
  EXPECT_TRUE(core::SchedulingState::book_oracle_from_env());
  unsetenv("RTCM_CHECK_BOOK_ORACLE");
}

}  // namespace
}  // namespace rtcm
