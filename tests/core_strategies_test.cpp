#include <gtest/gtest.h>

#include <set>

#include "core/criteria.h"
#include "core/strategies.h"

namespace rtcm::core {
namespace {

// --- StrategyCombination (Figure 2, §4.5) ------------------------------------

TEST(StrategyTest, EighteenTotalCombinations) {
  EXPECT_EQ(all_combinations().size(), 18u);
  std::set<std::string> labels;
  for (const auto& c : all_combinations()) labels.insert(c.label());
  EXPECT_EQ(labels.size(), 18u);
}

TEST(StrategyTest, ExactlyFifteenValidCombinations) {
  const auto valid = valid_combinations();
  EXPECT_EQ(valid.size(), 15u);
  for (const auto& c : valid) {
    EXPECT_TRUE(c.valid()) << c.label();
    EXPECT_TRUE(c.invalid_reason().empty());
  }
}

TEST(StrategyTest, TheThreeInvalidCombinationsAreAcTaskIrJob) {
  std::size_t invalid_count = 0;
  for (const auto& c : all_combinations()) {
    if (!c.valid()) {
      ++invalid_count;
      EXPECT_EQ(c.ac, AcStrategy::kPerTask);
      EXPECT_EQ(c.ir, IrStrategy::kPerJob);
      EXPECT_FALSE(c.invalid_reason().empty());
    }
  }
  EXPECT_EQ(invalid_count, 3u);
}

TEST(StrategyTest, LabelsMatchPaperFigureOrder) {
  const auto combos = all_combinations();
  EXPECT_EQ(combos.front().label(), "T_N_N");
  EXPECT_EQ(combos.back().label(), "J_J_J");
  const auto valid = valid_combinations();
  // The paper's figures enumerate: T_N_*, T_T_*, J_N_*, J_T_*, J_J_*.
  std::vector<std::string> expected = {
      "T_N_N", "T_N_T", "T_N_J", "T_T_N", "T_T_T", "T_T_J", "J_N_N", "J_N_T",
      "J_N_J", "J_T_N", "J_T_T", "J_T_J", "J_J_N", "J_J_T", "J_J_J"};
  std::vector<std::string> actual;
  for (const auto& c : valid) actual.push_back(c.label());
  EXPECT_EQ(actual, expected);
}

TEST(StrategyTest, ParseRoundTrip) {
  for (const auto& c : all_combinations()) {
    const auto parsed = StrategyCombination::parse(c.label());
    ASSERT_TRUE(parsed.is_ok()) << c.label();
    EXPECT_EQ(parsed.value(), c);
  }
}

TEST(StrategyTest, ParseIsCaseInsensitive) {
  const auto parsed = StrategyCombination::parse(" j_t_n ");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().label(), "J_T_N");
}

TEST(StrategyTest, ParseRejectsMalformed) {
  EXPECT_FALSE(StrategyCombination::parse("").is_ok());
  EXPECT_FALSE(StrategyCombination::parse("T_N").is_ok());
  EXPECT_FALSE(StrategyCombination::parse("X_N_N").is_ok());
  EXPECT_FALSE(StrategyCombination::parse("T_X_N").is_ok());
  EXPECT_FALSE(StrategyCombination::parse("T_N_X").is_ok());
  EXPECT_FALSE(StrategyCombination::parse("N_N_N").is_ok());  // AC has no N
  EXPECT_FALSE(StrategyCombination::parse("TT_N_N").is_ok());
}

TEST(StrategyTest, Names) {
  EXPECT_STREQ(to_string(AcStrategy::kPerTask), "AC per Task");
  EXPECT_STREQ(to_string(AcStrategy::kPerJob), "AC per Job");
  EXPECT_STREQ(to_string(IrStrategy::kNone), "No IR");
  EXPECT_STREQ(to_string(IrStrategy::kPerTask), "IR per Task");
  EXPECT_STREQ(to_string(IrStrategy::kPerJob), "IR per Job");
  EXPECT_STREQ(to_string(LbStrategy::kNone), "No LB");
  EXPECT_STREQ(to_string(LbStrategy::kPerTask), "LB per Task");
  EXPECT_STREQ(to_string(LbStrategy::kPerJob), "LB per Job");
}

// --- Criteria mapping (Table 1 + §6 question 4) ------------------------------

struct MappingCase {
  bool c1_job_skipping;
  bool c2_state_persistency;
  bool c3_replication;
  OverheadTolerance overhead;
  const char* expected_label;
};

class CriteriaMappingTest : public ::testing::TestWithParam<MappingCase> {};

TEST_P(CriteriaMappingTest, MapsToExpectedCombination) {
  const MappingCase& param = GetParam();
  CpsCharacteristics c;
  c.job_skipping = param.c1_job_skipping;
  c.state_persistency = param.c2_state_persistency;
  c.component_replication = param.c3_replication;
  c.overhead_tolerance = param.overhead;
  const StrategySelection selection = select_strategies(c);
  EXPECT_EQ(selection.strategies.label(), param.expected_label);
  EXPECT_TRUE(selection.strategies.valid());
}

INSTANTIATE_TEST_SUITE_P(
    AllCorners, CriteriaMappingTest,
    ::testing::Values(
        // The paper's Figure 4 example: no skipping, replicated, stateful,
        // per-task overhead -> everything per task.
        MappingCase{false, true, true, OverheadTolerance::kPerTask, "T_T_T"},
        // No replication (C3 = no) -> LB disabled (Table 1 row 3).
        MappingCase{false, false, false, OverheadTolerance::kPerTask,
                    "T_T_N"},
        MappingCase{true, false, false, OverheadTolerance::kPerJob, "J_J_N"},
        // Job skipping + per-job overhead budget -> AC per job.
        MappingCase{true, false, true, OverheadTolerance::kPerJob, "J_J_J"},
        // Job skipping but budget only per-task -> AC stays per task.
        MappingCase{true, false, true, OverheadTolerance::kPerTask, "T_T_T"},
        // Stateful (C2 = yes) -> LB per task even with per-job budget.
        MappingCase{true, true, true, OverheadTolerance::kPerJob, "J_J_T"},
        // No overhead budget -> no idle resetting.
        MappingCase{false, false, true, OverheadTolerance::kNone, "T_N_T"},
        MappingCase{false, true, true, OverheadTolerance::kNone, "T_N_T"},
        // AC per Task + per-job budget would give IR per Job (invalid);
        // the mapper downgrades IR to per task.
        MappingCase{false, false, true, OverheadTolerance::kPerJob, "T_T_J"},
        MappingCase{false, true, false, OverheadTolerance::kPerJob, "T_T_N"}));

TEST(CriteriaTest, DowngradeNoteExplainsIrAdjustment) {
  CpsCharacteristics c;
  c.job_skipping = false;  // forces AC per Task
  c.component_replication = true;
  c.overhead_tolerance = OverheadTolerance::kPerJob;  // asks for IR per Job
  const StrategySelection selection = select_strategies(c);
  EXPECT_EQ(selection.strategies.ir, IrStrategy::kPerTask);
  bool found_note = false;
  for (const auto& note : selection.notes) {
    if (note.find("downgraded") != std::string::npos) found_note = true;
  }
  EXPECT_TRUE(found_note);
}

TEST(CriteriaTest, MapperAlwaysProducesValidCombination) {
  for (const bool c1 : {false, true}) {
    for (const bool c2 : {false, true}) {
      for (const bool c3 : {false, true}) {
        for (const OverheadTolerance o :
             {OverheadTolerance::kNone, OverheadTolerance::kPerTask,
              OverheadTolerance::kPerJob}) {
          CpsCharacteristics c{c1, c2, c3, o};
          EXPECT_TRUE(select_strategies(c).strategies.valid());
        }
      }
    }
  }
}

TEST(CriteriaTest, DefaultIsAllPerTask) {
  EXPECT_EQ(default_strategies().label(), "T_T_T");
}

TEST(CriteriaTest, OverheadToleranceNames) {
  EXPECT_STREQ(to_string(OverheadTolerance::kNone), "none");
  EXPECT_STREQ(to_string(OverheadTolerance::kPerTask), "per-task");
  EXPECT_STREQ(to_string(OverheadTolerance::kPerJob), "per-job");
}

}  // namespace
}  // namespace rtcm::core
