// Direct unit tests of the admission controller's book of record.
#include <gtest/gtest.h>

#include "core/scheduling_state.h"
#include "test_helpers.h"

namespace rtcm::core {
namespace {

using rtcm::testing::make_aperiodic;
using rtcm::testing::make_periodic;

sched::TaskSpec two_stage_task(std::int32_t id = 0) {
  // 100 ms deadline, stages of 20 ms (u=0.2) on P0 and 10 ms (u=0.1) on P1.
  return make_periodic(id, Duration::milliseconds(100),
                       {{0, 20000}, {1, 10000}});
}

TEST(SchedulingStateTest, AdmitJobAddsStageContributions) {
  SchedulingState state;
  const auto task = two_stage_task();
  state.admit_job(task, JobId(1), {ProcessorId(0), ProcessorId(1)},
                  Time(100000));
  EXPECT_TRUE(state.has_job(JobId(1)));
  EXPECT_EQ(state.active_jobs(), 1u);
  EXPECT_NEAR(state.ledger().total(ProcessorId(0)), 0.2, 1e-12);
  EXPECT_NEAR(state.ledger().total(ProcessorId(1)), 0.1, 1e-12);
  ASSERT_TRUE(state.job(JobId(1)).has_value());
  EXPECT_EQ(state.job(JobId(1))->absolute_deadline, Time(100000));
}

TEST(SchedulingStateTest, AdmitJobHonoursAlternatePlacement) {
  SchedulingState state;
  const auto task = two_stage_task();
  // Both stages re-allocated to P5/P6.
  state.admit_job(task, JobId(1), {ProcessorId(5), ProcessorId(6)},
                  Time(100000));
  EXPECT_NEAR(state.ledger().total(ProcessorId(5)), 0.2, 1e-12);
  EXPECT_NEAR(state.ledger().total(ProcessorId(6)), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(state.ledger().total(ProcessorId(0)), 0.0);
}

TEST(SchedulingStateTest, ExpireJobRemovesEverything) {
  SchedulingState state;
  state.admit_job(two_stage_task(), JobId(1),
                  {ProcessorId(0), ProcessorId(1)}, Time(100000));
  state.expire_job(JobId(1));
  EXPECT_FALSE(state.has_job(JobId(1)));
  EXPECT_DOUBLE_EQ(state.ledger().total(ProcessorId(0)), 0.0);
  EXPECT_DOUBLE_EQ(state.ledger().total(ProcessorId(1)), 0.0);
  // Idempotent.
  state.expire_job(JobId(1));
  EXPECT_EQ(state.active_jobs(), 0u);
}

TEST(SchedulingStateTest, ResetSubjobRemovesOnlyThatStage) {
  SchedulingState state;
  state.admit_job(two_stage_task(), JobId(1),
                  {ProcessorId(0), ProcessorId(1)}, Time(100000));
  EXPECT_TRUE(state.reset_subjob(JobId(1), 0));
  EXPECT_DOUBLE_EQ(state.ledger().total(ProcessorId(0)), 0.0);
  EXPECT_NEAR(state.ledger().total(ProcessorId(1)), 0.1, 1e-12);
  // Second reset of the same stage is a no-op.
  EXPECT_FALSE(state.reset_subjob(JobId(1), 0));
  // The job is still tracked until expiry.
  EXPECT_TRUE(state.has_job(JobId(1)));
  // Expiry removes the remaining stage only.
  state.expire_job(JobId(1));
  EXPECT_DOUBLE_EQ(state.ledger().total(ProcessorId(1)), 0.0);
}

TEST(SchedulingStateTest, ResetUnknownJobOrStage) {
  SchedulingState state;
  EXPECT_FALSE(state.reset_subjob(JobId(9), 0));
  state.admit_job(two_stage_task(), JobId(1),
                  {ProcessorId(0), ProcessorId(1)}, Time(100000));
  EXPECT_FALSE(state.reset_subjob(JobId(1), 7));  // out-of-range stage
}

TEST(SchedulingStateTest, ReservationsAreImmuneToJobOperations) {
  SchedulingState state;
  const auto task = two_stage_task();
  state.reserve_task(task, {ProcessorId(0), ProcessorId(1)});
  EXPECT_TRUE(state.is_reserved(TaskId(0)));
  EXPECT_EQ(state.reservation_count(), 1u);
  // Job-level operations must not touch the reservation.
  EXPECT_FALSE(state.reset_subjob(JobId(0), 0));
  state.expire_job(JobId(0));
  EXPECT_NEAR(state.ledger().total(ProcessorId(0)), 0.2, 1e-12);
  ASSERT_TRUE(state.reservation(TaskId(0)).has_value());
  EXPECT_EQ(state.reservation(TaskId(0))->placement[1], ProcessorId(1));
}

TEST(SchedulingStateTest, ReleaseReservationReturnsPlacementAndFrees) {
  SchedulingState state;
  const auto task = two_stage_task();
  state.reserve_task(task, {ProcessorId(3), ProcessorId(4)});
  const auto placement = state.release_reservation(task);
  EXPECT_EQ(placement,
            (std::vector<ProcessorId>{ProcessorId(3), ProcessorId(4)}));
  EXPECT_FALSE(state.is_reserved(TaskId(0)));
  EXPECT_DOUBLE_EQ(state.ledger().total(ProcessorId(3)), 0.0);
  EXPECT_DOUBLE_EQ(state.ledger().total(ProcessorId(4)), 0.0);
}

TEST(SchedulingStateTest, FootprintsCoverJobsAndReservations) {
  SchedulingState state;
  state.admit_job(two_stage_task(0), JobId(1),
                  {ProcessorId(0), ProcessorId(1)}, Time(100000));
  state.reserve_task(two_stage_task(1), {ProcessorId(2), ProcessorId(3)});
  const auto footprints = state.current_footprints();
  ASSERT_EQ(footprints.size(), 2u);
  EXPECT_EQ(footprints[0].task, TaskId(0));
  EXPECT_EQ(footprints[0].processors,
            (std::vector<ProcessorId>{ProcessorId(0), ProcessorId(1)}));
  EXPECT_EQ(footprints[1].task, TaskId(1));
}

TEST(SchedulingStateTest, BackgroundLoadHasNoFootprint) {
  SchedulingState state;
  state.add_background(ProcessorId(0), 0.4);
  EXPECT_NEAR(state.ledger().total(ProcessorId(0)), 0.4, 1e-12);
  EXPECT_TRUE(state.current_footprints().empty());
}

TEST(SchedulingStateTest, ManyConcurrentJobsOfOneTask) {
  // Aperiodic bursts put several jobs of the same task in flight at once;
  // each must carry independent contributions.
  SchedulingState state;
  const auto task = make_aperiodic(0, Duration::milliseconds(100),
                                   {{0, 10000}});
  for (int k = 0; k < 5; ++k) {
    state.admit_job(task, JobId(k), {ProcessorId(0)},
                    Time(100000 + k));
  }
  EXPECT_EQ(state.active_jobs(), 5u);
  EXPECT_NEAR(state.ledger().total(ProcessorId(0)), 0.5, 1e-12);
  state.expire_job(JobId(2));
  EXPECT_NEAR(state.ledger().total(ProcessorId(0)), 0.4, 1e-12);
  EXPECT_EQ(state.current_footprints().size(), 4u);
}

TEST(SchedulingStateTest, ResetsAreDecreaseOnlyUnderRandomInterleaving) {
  // Unit-level mirror of the system invariant: across arbitrary
  // admit/reset/expire interleavings over a generated workload, admissions
  // are the only operation that may grow the ledger, and draining every job
  // returns it to exactly zero.
  const sched::TaskSet tasks = rtcm::testing::make_imbalanced_workload(7);
  SchedulingState state;
  Rng rng(7);
  struct LiveJob {
    JobId job;
    const sched::TaskSpec* spec;
  };
  std::vector<LiveJob> live;
  std::int32_t next_job = 0;

  for (int step = 0; step < 600; ++step) {
    const double before = state.ledger().total_all();
    const std::size_t op = rng.index(3);
    if (op == 0 || live.empty()) {
      const sched::TaskSpec& spec = tasks.tasks()[rng.index(tasks.size())];
      std::vector<ProcessorId> placement;
      for (const sched::SubtaskSpec& st : spec.subtasks) {
        placement.push_back(st.primary);
      }
      const JobId job(next_job++);
      state.admit_job(spec, job, placement, Time(step * 1000 + 100000));
      live.push_back({job, &spec});
      EXPECT_GE(state.ledger().total_all(), before);
    } else if (op == 1) {
      const LiveJob& pick = live[rng.index(live.size())];
      (void)state.reset_subjob(pick.job,
                               rng.index(pick.spec->subtasks.size()));
      EXPECT_LE(state.ledger().total_all(), before);
    } else {
      const std::size_t i = rng.index(live.size());
      state.expire_job(live[i].job);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      EXPECT_LE(state.ledger().total_all(), before);
    }
  }
  for (const LiveJob& j : live) state.expire_job(j.job);
  EXPECT_EQ(state.active_jobs(), 0u);
  EXPECT_DOUBLE_EQ(state.ledger().total_all(), 0.0);
}

}  // namespace
}  // namespace rtcm::core
