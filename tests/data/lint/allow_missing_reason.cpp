// Fixture: an allow() without a written justification does not suppress —
// the original finding survives and the malformed allow is reported too.
// lint-expect: unordered-iteration
// lint-expect: lint-usage
#include <string>
#include <unordered_map>

double total(const std::unordered_map<std::string, double>& totals) {
  double sum = 0.0;
  // rtcm-lint: allow(unordered-iteration)
  for (const auto& [name, value] : totals) {
    sum += value;
  }
  return sum;
}
