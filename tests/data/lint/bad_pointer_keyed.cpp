// Fixture: std::map/std::set keyed on pointers iterate in address order,
// which is allocation-order (and ASLR) dependent — nondeterministic across
// runs even though the container is "ordered".
// lint-expect: pointer-keyed
#include <map>
#include <set>

struct Task {
  int id;
};

int sum_ids(const std::map<Task*, int>& weights,
            const std::set<const Task*>& live) {
  int total = 0;
  for (const auto& [task, w] : weights) {
    total += live.count(task) ? w * task->id : 0;
  }
  return total;
}
