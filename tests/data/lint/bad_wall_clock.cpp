// Fixture: ambient randomness and wall-clock reads break the same-seed =>
// byte-identical contract.  All randomness must flow from the seeded
// rtcm::Rng; simulated time comes from the Simulator.
// lint-expect: wall-clock
#include <chrono>
#include <cstdlib>
#include <ctime>

unsigned jitter_us() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  const auto now = std::chrono::system_clock::now();
  (void)now;
  return static_cast<unsigned>(std::rand() % 100);
}
