// Fixture: the sanctioned sim event-path shape — InlineFunction delegates
// in pre-sized slab storage, placement-new into slots the slab owns.
#include <cstddef>
#include <new>
#include <vector>

template <typename Sig, std::size_t Cap>
class InlineFunction;

struct Event {
  int id;
};

struct EventSlot {
  alignas(16) unsigned char storage[88];
};

void emplace_slot(std::vector<EventSlot>& slab, std::size_t slot) {
  new (slab[slot].storage) Event{42};
}
