// Fixture: sim event paths (any file under a sim/ directory) must not use
// std::function or raw new — zero per-event heap allocations is an
// enforced contract (tests/sim_alloc_test.cpp); InlineFunction and
// slab/arena storage are the sanctioned tools.
// lint-expect: sim-path-alloc
#include <functional>

struct Event {
  int id;
};

struct EventSlot {
  std::function<void(const Event&)> callback;
};

EventSlot* make_slot() {
  return new EventSlot{};
}
