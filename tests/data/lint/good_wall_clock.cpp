// Fixture: steady_clock is allowed — wall_ms measurement is explicitly
// non-deterministic and excluded from deterministic report forms; seeded
// generators are the sanctioned randomness source.
#include <chrono>
#include <cstdint>
#include <random>

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now - start).count();
}

std::uint64_t draw(std::mt19937_64& seeded_engine) {
  return seeded_engine();
}
