// Fixture: keying ordered containers on value ids keeps iteration order a
// pure function of the data, not the allocator.
#include <map>
#include <set>

struct Task {
  int id;
};

int sum_ids(const std::map<int, int>& weights, const std::set<int>& live) {
  int total = 0;
  for (const auto& [id, w] : weights) {
    total += live.count(id) ? w * id : 0;
  }
  return total;
}
