// Fixture: the inline suppression round trip.  A justified
// `// rtcm-lint: allow(<rule>) <reason>` on the offending line (or the
// line above) suppresses exactly that rule on exactly that line.
#include <algorithm>
#include <string>
#include <unordered_map>

double peak(const std::unordered_map<std::string, double>& totals) {
  double best = 0.0;
  // rtcm-lint: allow(unordered-iteration) max() is commutative and
  for (const auto& [name, value] : totals) {
    best = std::max(best, value);
  }
  return best;
}
