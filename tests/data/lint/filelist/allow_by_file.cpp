// Fixture: suppressed via the adjacent allowlist.txt (file-level glob
// entry) instead of an inline comment — the mechanism for generated code
// or whole-file exemptions.
#include <string>
#include <unordered_map>

int count_entries(const std::unordered_map<std::string, int>& table) {
  int n = 0;
  for (const auto& entry : table) {
    (void)entry;
    ++n;
  }
  return n;
}
