// Fixture: range-for over a local unordered_map must be flagged — hash
// iteration order is libstdc++-internal, so anything it feeds (traces,
// reports, JSON) drifts across compilers.
// lint-expect: unordered-iteration
#include <string>
#include <unordered_map>

double sum_scores(const std::unordered_map<std::string, double>& in) {
  std::unordered_map<std::string, double> scores = in;
  double total = 0.0;
  for (const auto& [name, score] : scores) {
    total += score;  // FP addition is order-sensitive: nondeterministic.
  }
  return total;
}
