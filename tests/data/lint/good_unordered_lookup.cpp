// Fixture: unordered containers are fine as lookup structures — find/at/
// count/contains/operator[] never observe hash order.  Iteration belongs
// on ordered containers (std::map here renders deterministically).
#include <map>
#include <string>
#include <unordered_map>

double report_total(const std::map<std::string, double>& by_name,
                    const std::unordered_map<std::string, double>& weights) {
  double total = 0.0;
  for (const auto& [name, value] : by_name) {
    const auto it = weights.find(name);
    const double w = it != weights.end() ? it->second : 1.0;
    total += w * value;
  }
  return total;
}

bool knows(const std::unordered_map<std::string, double>& weights,
           const std::string& key) {
  return weights.count(key) > 0 && weights.at(key) >= 0.0;
}
