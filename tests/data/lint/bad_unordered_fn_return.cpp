// Fixture: iterating the return value of a function declared to return an
// unordered container is the same hazard as iterating a local, and the
// iterator-based spelling (.begin()) must be caught too.
// lint-expect: unordered-iteration
#include <unordered_set>
#include <vector>

std::unordered_set<int> touched_processors();

std::vector<int> render_order() {
  std::vector<int> out;
  for (int proc : touched_processors()) {
    out.push_back(proc);
  }
  std::unordered_set<int> seen = touched_processors();
  out.assign(seen.begin(), seen.end());
  return out;
}
