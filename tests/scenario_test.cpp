// Scenario API: spec validation, deterministic JSON round trips, builder
// ergonomics, library determinism, and the headline contract — a sweep
// whose cells are round-tripped through their JSON form is byte-identical
// to the direct sweep.  `ctest -L scenario` selects this layer.
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/builder.h"
#include "scenario/library.h"
#include "scenario/scenario.h"
#include "sweep/report.h"
#include "sweep/sweep.h"
#include "test_helpers.h"

namespace rtcm {
namespace {

scenario::ScenarioSpec small_generated_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "small-generated";
  spec.seed = 3;
  spec.horizon = Duration::seconds(10);
  spec.drain = Duration::seconds(5);
  spec.config.strategies = core::StrategyCombination::parse("J_T_N").value();
  spec.workload = scenario::WorkloadSpec::generated(
      workload::random_workload_shape());
  return spec;
}

scenario::ScenarioSpec explicit_spec() {
  auto built =
      scenario::ScenarioBuilder("explicit")
          .task(scenario::TaskBuilder::periodic(0, "pipeline",
                                                Duration::milliseconds(400))
                    .stage(Duration::milliseconds(30), 0, {1})
                    .stage(Duration::milliseconds(20), 1))
          .task(scenario::TaskBuilder::aperiodic(1, "alert",
                                                 Duration::milliseconds(300))
                    .mean_interarrival(Duration::milliseconds(900))
                    .stage(Duration::milliseconds(25), 1, {0}))
          .strategies("J_J_T")
          .horizon(Duration::seconds(5))
          .drain(Duration::seconds(2))
          .build();
  EXPECT_TRUE(built.is_ok()) << built.message();
  return built.value();
}

// --- Validation --------------------------------------------------------------

TEST(ScenarioValidation, AcceptsDefaultedGeneratedSpec) {
  EXPECT_TRUE(scenario::validate(small_generated_spec()).is_ok());
}

TEST(ScenarioValidation, RejectsNegativeLatencies) {
  auto spec = small_generated_spec();
  spec.config.comm_latency = Duration::microseconds(-1);
  const Status s = scenario::validate(spec);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("comm_latency"), std::string::npos);

  spec = small_generated_spec();
  spec.config.comm_jitter = Duration::microseconds(-5);
  EXPECT_NE(scenario::validate(spec).message().find("comm_jitter"),
            std::string::npos);

  spec = small_generated_spec();
  spec.config.loopback_latency = Duration::microseconds(-5);
  EXPECT_NE(scenario::validate(spec).message().find("loopback_latency"),
            std::string::npos);
}

TEST(ScenarioValidation, RejectsUnknownLbPolicy) {
  auto spec = small_generated_spec();
  spec.config.lb_policy = "round-robin";
  const Status s = scenario::validate(spec);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("round-robin"), std::string::npos);
}

TEST(ScenarioValidation, RejectsBadHorizonAndDrain) {
  auto spec = small_generated_spec();
  spec.horizon = Duration::zero();
  EXPECT_FALSE(scenario::validate(spec).is_ok());
  spec = small_generated_spec();
  spec.drain = Duration::microseconds(-1);
  EXPECT_FALSE(scenario::validate(spec).is_ok());
}

TEST(ScenarioValidation, RejectsDegenerateGeneratedShape) {
  auto spec = small_generated_spec();
  spec.workload.shape.per_processor_utilization = 1.5;
  EXPECT_FALSE(scenario::validate(spec).is_ok());
  spec = small_generated_spec();
  spec.workload.shape.primary_processors.clear();
  EXPECT_FALSE(scenario::validate(spec).is_ok());
  spec = small_generated_spec();
  spec.workload.shape.max_subtasks = 0;
  EXPECT_FALSE(scenario::validate(spec).is_ok());
}

TEST(ScenarioValidation, RejectsSeedsBeyondJsonExactRange) {
  // json::Value stores numbers as doubles; a seed past 2^53 would come back
  // changed from a round trip, so validation refuses it up front.
  auto spec = small_generated_spec();
  spec.seed = (1ull << 53) + 1;
  const Status s = scenario::validate(spec);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("2^53"), std::string::npos);

  spec = small_generated_spec();
  spec.config.lb_seed = (1ull << 60);
  EXPECT_FALSE(scenario::validate(spec).is_ok());
  spec = small_generated_spec();
  spec.config.comm_jitter_seed = ~0ull;
  EXPECT_FALSE(scenario::validate(spec).is_ok());
  spec = small_generated_spec();
  spec.seed = 1ull << 53;  // exactly representable
  EXPECT_TRUE(scenario::validate(spec).is_ok());
}

TEST(ScenarioValidation, RejectsEmptyExplicitWorkload) {
  scenario::ScenarioSpec spec = small_generated_spec();
  spec.workload = scenario::WorkloadSpec::explicit_tasks(sched::TaskSet{});
  EXPECT_FALSE(scenario::validate(spec).is_ok());
}

TEST(ScenarioValidation, RejectsInvalidReconfigStrategySwap) {
  auto spec = small_generated_spec();
  config::ModeChange change;
  change.at = Time(Duration::seconds(1).usec());
  change.label = "bad-swap";
  core::StrategyCombination invalid;
  invalid.ac = core::AcStrategy::kPerTask;
  invalid.ir = core::IrStrategy::kPerJob;  // the contradictory pairing
  change.strategies = invalid;
  spec.reconfig.push_back(change);
  const Status s = scenario::validate(spec);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("bad-swap"), std::string::npos);
}

// --- SystemConfig validation at assemble time (core::validate_config) -------

TEST(SystemConfigValidation, AssembleRejectsNegativeCommLatency) {
  core::SystemConfig config;
  config.comm_latency = Duration::microseconds(-10);
  core::SystemRuntime runtime(config, testing::make_imbalanced_workload(1));
  const Status s = runtime.assemble();
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("comm_latency"), std::string::npos);
}

TEST(SystemConfigValidation, AssembleRejectsUnknownLbPolicy) {
  core::SystemConfig config;
  config.lb_policy = "mystery";
  core::SystemRuntime runtime(config, testing::make_imbalanced_workload(1));
  const Status s = runtime.assemble();
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("mystery"), std::string::npos);
}

TEST(SystemConfigValidation, RejectsMalformedDeferrableServer) {
  core::SystemConfig config;
  config.analysis = core::AperiodicAnalysis::kDeferrableServer;
  config.ds_server.budget = Duration::milliseconds(200);
  config.ds_server.period = Duration::milliseconds(100);
  EXPECT_FALSE(core::validate_config(config).is_ok());
  config.ds_server.budget = Duration::zero();
  EXPECT_FALSE(core::validate_config(config).is_ok());
  config.ds_server.budget = Duration::milliseconds(20);
  EXPECT_TRUE(core::validate_config(config).is_ok());
}

TEST(SystemConfigValidation, NegativeJitterAndLoopbackAreRejected) {
  core::SystemConfig config;
  config.comm_jitter = Duration::microseconds(-1);
  EXPECT_FALSE(core::validate_config(config).is_ok());
  config = core::SystemConfig{};
  config.loopback_latency = Duration::microseconds(-1);
  EXPECT_FALSE(core::validate_config(config).is_ok());
  EXPECT_TRUE(core::validate_config(core::SystemConfig{}).is_ok());
}

// --- JSON round trip ---------------------------------------------------------

TEST(ScenarioJson, GeneratedSpecRoundTripIsFixedPoint) {
  const auto spec = small_generated_spec();
  const std::string bytes = scenario::to_json(spec).dump();
  // Serialization is deterministic: same spec, same bytes.
  EXPECT_EQ(bytes, scenario::to_json(spec).dump());

  const auto restored = scenario::spec_from_text(bytes);
  ASSERT_TRUE(restored.is_ok()) << restored.message();
  EXPECT_EQ(scenario::to_json(restored.value()).dump(), bytes);
  EXPECT_EQ(restored.value().name, spec.name);
  EXPECT_EQ(restored.value().seed, spec.seed);
  EXPECT_EQ(restored.value().config.strategies.label(), "J_T_N");
}

TEST(ScenarioJson, ExplicitSpecRoundTripPreservesTasks) {
  const auto spec = explicit_spec();
  const std::string bytes = scenario::to_json(spec).dump();
  const auto restored = scenario::spec_from_text(bytes);
  ASSERT_TRUE(restored.is_ok()) << restored.message();
  EXPECT_EQ(scenario::to_json(restored.value()).dump(), bytes);

  const sched::TaskSet& tasks = restored.value().workload.tasks;
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks.find(TaskId(0))->name, "pipeline");
  EXPECT_EQ(tasks.find(TaskId(0))->subtasks.size(), 2u);
  EXPECT_EQ(tasks.find(TaskId(1))->kind, sched::TaskKind::kAperiodic);
  EXPECT_EQ(tasks.find(TaskId(1))->mean_interarrival,
            Duration::milliseconds(900));
}

TEST(ScenarioJson, ArrivalModelsAndReconfigRoundTrip) {
  auto spec = small_generated_spec();
  workload::BurstShape burst;
  burst.bursts = 5;
  burst.jobs_per_burst = 7;
  burst.intra_gap = Duration::milliseconds(3);
  spec.arrivals = scenario::ArrivalModel::bursty(burst);
  spec.reconfig = testing::ReconfigScriptBuilder()
                      .swap_strategies(Time(Duration::seconds(2).usec()),
                                       "J_N_J")
                      .drain(Time(Duration::seconds(3).usec()), 4)
                      .undrain(Time(Duration::seconds(6).usec()), 4)
                      .build();
  const std::string bytes = scenario::to_json(spec).dump();
  const auto restored = scenario::spec_from_text(bytes);
  ASSERT_TRUE(restored.is_ok()) << restored.message();
  EXPECT_EQ(scenario::to_json(restored.value()).dump(), bytes);
  EXPECT_EQ(restored.value().arrivals.kind,
            scenario::ArrivalModel::Kind::kBursty);
  EXPECT_EQ(restored.value().arrivals.burst.jobs_per_burst, 7u);
  ASSERT_EQ(restored.value().reconfig.size(), 3u);
  EXPECT_EQ(restored.value().reconfig[0].strategies->label(), "J_N_J");
  ASSERT_EQ(restored.value().reconfig[1].drain.size(), 1u);
  EXPECT_EQ(restored.value().reconfig[1].drain[0], ProcessorId(4));

  // Explicit arrival traces round-trip too.
  spec = explicit_spec();
  spec.arrivals = scenario::ArrivalModel::explicit_trace(
      {{TaskId(0), Time(0)}, {TaskId(1), Time(1000)}});
  const std::string trace_bytes = scenario::to_json(spec).dump();
  const auto trace_restored = scenario::spec_from_text(trace_bytes);
  ASSERT_TRUE(trace_restored.is_ok()) << trace_restored.message();
  EXPECT_EQ(scenario::to_json(trace_restored.value()).dump(), trace_bytes);
  ASSERT_EQ(trace_restored.value().arrivals.trace.size(), 2u);
  EXPECT_EQ(trace_restored.value().arrivals.trace[1].time, Time(1000));
}

TEST(ScenarioJson, ParseRejectsGarbage) {
  EXPECT_FALSE(scenario::spec_from_text("not json").is_ok());
  EXPECT_FALSE(scenario::spec_from_text("{}").is_ok());  // no schema_version
  EXPECT_FALSE(
      scenario::spec_from_text(R"({"schema_version": 99})").is_ok());
  // Unknown strategy labels are refused, not defaulted.
  auto doc = scenario::to_json(small_generated_spec());
  json::Value config = doc.get("config");
  config.set("strategies", "X_Y_Z");
  doc.set("config", config);
  EXPECT_FALSE(scenario::spec_from_json(doc).is_ok());
}

// --- Running -----------------------------------------------------------------

TEST(ScenarioRun, GeneratedSpecProducesMetricsAndRuntime) {
  auto result = scenario::run_scenario(small_generated_spec());
  ASSERT_TRUE(result.is_ok()) << result.message();
  const scenario::ScenarioResult& outcome = result.value();
  EXPECT_GT(outcome.accept_ratio, 0.0);
  EXPECT_LE(outcome.accept_ratio, 1.0);
  EXPECT_GT(outcome.arrivals, 0u);
  ASSERT_NE(outcome.runtime, nullptr);
  EXPECT_TRUE(outcome.runtime->assembled());
  EXPECT_EQ(outcome.runtime->config().strategies.label(), "J_T_N");
}

TEST(ScenarioRun, RunIsDeterministicInTheSpec) {
  const auto spec = small_generated_spec();
  auto first = scenario::run_scenario(spec);
  auto second = scenario::run_scenario(spec);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value().accept_ratio, second.value().accept_ratio);
  EXPECT_EQ(first.value().arrivals, second.value().arrivals);
  EXPECT_EQ(first.value().completions, second.value().completions);
  EXPECT_EQ(first.value().deadline_misses, second.value().deadline_misses);
}

TEST(ScenarioRun, ExplicitTraceArrivalsAreReplayedVerbatim) {
  auto spec = explicit_spec();
  spec.arrivals = scenario::ArrivalModel::explicit_trace(
      {{TaskId(0), Time(0)},
       {TaskId(1), Time(Duration::milliseconds(50).usec())},
       {TaskId(0), Time(Duration::milliseconds(400).usec())}});
  auto result = scenario::run_scenario(spec);
  ASSERT_TRUE(result.is_ok()) << result.message();
  EXPECT_EQ(result.value().arrivals, 3u);
}

TEST(ScenarioRun, NoneArrivalModelRunsZeroJobs) {
  auto spec = explicit_spec();
  spec.arrivals = scenario::ArrivalModel::none();
  auto result = scenario::run_scenario(spec);
  ASSERT_TRUE(result.is_ok()) << result.message();
  EXPECT_EQ(result.value().arrivals, 0u);
  EXPECT_EQ(result.value().accept_ratio, 1.0);  // nothing arrived
}

TEST(ScenarioRun, BurstyModelStressesAdmission) {
  auto spec = small_generated_spec();
  workload::BurstShape burst;
  burst.bursts = 3;
  burst.jobs_per_burst = 10;
  spec.arrivals = scenario::ArrivalModel::bursty(burst);
  auto result = scenario::run_scenario(spec);
  ASSERT_TRUE(result.is_ok()) << result.message();
  // 4 aperiodic tasks x 30 burst jobs, plus the periodic releases.
  EXPECT_GE(result.value().arrivals, 120u);
  // Run is a pure function of the spec even under bursts.
  auto again = scenario::run_scenario(spec);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(result.value().completions, again.value().completions);
}

TEST(ScenarioRun, ReconfigScriptRunsInsideTheScenario) {
  auto spec = small_generated_spec();
  spec.workload = scenario::WorkloadSpec::generated(
      workload::imbalanced_workload_shape());
  spec.reconfig = testing::ReconfigScriptBuilder()
                      .swap_lb_policy(Time(Duration::seconds(2).usec()),
                                      "primary")
                      .swap_strategies(Time(Duration::seconds(4).usec()),
                                       "J_N_J")
                      .build();
  auto result = scenario::run_scenario(spec);
  ASSERT_TRUE(result.is_ok()) << result.message();
  EXPECT_EQ(result.value().reconfig_applied, 2u);
  EXPECT_EQ(result.value().reconfig_rejected, 0u);
  ASSERT_EQ(result.value().reconfig_history.size(), 2u);
  EXPECT_TRUE(result.value().reconfig_history[0].applied);
  EXPECT_EQ(result.value().runtime->config().strategies.label(), "J_N_J");
}

TEST(ScenarioRun, ManagerOutlivesRunForFurtherDriving) {
  // A mode change scheduled past horizon+drain is still pending inside the
  // returned runtime's simulator when run() finishes; the result owns the
  // manager, so driving the runtime further dispatches it safely (ASan
  // guards the lifetime) and the late step applies.
  auto spec = small_generated_spec();  // horizon 10s + drain 5s
  config::ModeChange late;
  late.at = Time(Duration::seconds(20).usec());
  late.label = "late-swap";
  late.lb_policy = "primary";
  spec.reconfig = {late};
  auto result = scenario::run_scenario(spec);
  ASSERT_TRUE(result.is_ok()) << result.message();
  EXPECT_EQ(result.value().reconfig_applied, 0u);
  ASSERT_NE(result.value().reconfig_manager, nullptr);

  result.value().runtime->run_for(Duration::seconds(10));
  EXPECT_EQ(result.value().reconfig_manager->applied_count(), 1u);
}

TEST(ScenarioRun, InvalidSpecFailsCleanly) {
  auto spec = small_generated_spec();
  spec.config.lb_policy = "nope";
  EXPECT_FALSE(scenario::run_scenario(spec).is_ok());
}

// --- Builders ----------------------------------------------------------------

TEST(ScenarioBuilder, CollectsBadStrategyLabel) {
  const auto built = scenario::ScenarioBuilder("bad").strategies("Q_Q_Q")
                         .workload(workload::random_workload_shape())
                         .build();
  EXPECT_FALSE(built.is_ok());
  EXPECT_NE(built.message().find("bad"), std::string::npos);
}

TEST(ScenarioBuilder, CollectsWorkloadSpecParseErrors) {
  const auto built = scenario::ScenarioBuilder("bad-spec")
                         .workload_spec_text("task ???")
                         .build();
  EXPECT_FALSE(built.is_ok());
}

TEST(ScenarioBuilder, TaskBuilderMatchesHandWrittenSpec) {
  const sched::TaskSpec built =
      scenario::TaskBuilder::periodic(7, "conveyor",
                                      Duration::milliseconds(200))
          .stage(Duration::milliseconds(10), 1, {0, 2})
          .build();
  EXPECT_EQ(built.id, TaskId(7));
  EXPECT_EQ(built.period, Duration::milliseconds(200));  // defaults to D
  ASSERT_EQ(built.subtasks.size(), 1u);
  EXPECT_EQ(built.subtasks[0].primary, ProcessorId(1));
  ASSERT_EQ(built.subtasks[0].replicas.size(), 2u);
  EXPECT_TRUE(sched::TaskSet::validate(built).is_ok());
}

// --- Sweep integration: round-tripped specs are byte-identical ---------------

sweep::Report report_of(std::vector<sweep::CellResult> cells) {
  sweep::Report report;
  report.name = "fig5";
  report.git_sha = "test";
  report.cells = std::move(cells);
  return report;
}

TEST(ScenarioSweep, RoundTrippedFigure5GridIsByteIdenticalToDirectSweep) {
  const auto entry = scenario::find_grid("fig5");
  ASSERT_TRUE(entry.is_ok());
  sweep::Grid grid = entry.value().grid;
  grid.seeds = 2;
  sweep::SweepParams params = entry.value().params;
  params.base.horizon = Duration::seconds(10);
  params.base.drain = Duration::seconds(5);

  const auto direct = sweep::run_sweep(grid, params, {});

  // Re-run every cell from its serialized spec: JSON -> spec -> run.
  std::vector<sweep::CellResult> replayed;
  for (const sweep::Cell& cell : grid.cells()) {
    const auto spec =
        sweep::cell_spec(cell, grid.shapes[0].shape, params);
    ASSERT_TRUE(spec.is_ok()) << spec.message();
    const std::string bytes = scenario::to_json(spec.value()).dump();
    const auto restored = scenario::spec_from_text(bytes);
    ASSERT_TRUE(restored.is_ok()) << restored.message();
    auto outcome = scenario::run_scenario(restored.value());
    ASSERT_TRUE(outcome.is_ok()) << outcome.message();
    sweep::CellResult result;
    result.cell = cell;
    result.accept_ratio = outcome.value().accept_ratio;
    result.deadline_misses = outcome.value().deadline_misses;
    result.aperiodic_response_ms = outcome.value().aperiodic_response_ms;
    result.reconfig_applied = outcome.value().reconfig_applied;
    result.reconfig_rejected = outcome.value().reconfig_rejected;
    replayed.push_back(std::move(result));
  }

  EXPECT_EQ(report_of(direct).deterministic_dump(),
            report_of(std::move(replayed)).deterministic_dump());
}

// --- Library -----------------------------------------------------------------

TEST(ScenarioLibrary, EveryEntryRunsCleanAndDeterministically) {
  for (const scenario::NamedGrid& entry : scenario::library()) {
    sweep::Grid grid = entry.grid;
    grid.seeds = 1;
    sweep::SweepParams params = entry.params;
    params.base.horizon = Duration::seconds(5);
    params.base.drain = Duration::seconds(2);

    sweep::SweepOptions single;
    single.threads = 1;
    sweep::SweepOptions sharded;
    sharded.threads = 2;
    const auto serial = sweep::run_sweep(grid, params, single);
    const auto parallel = sweep::run_sweep(grid, params, sharded);
    ASSERT_EQ(serial.size(), grid.cells().size()) << entry.name;
    for (const auto& cell : serial) {
      EXPECT_TRUE(cell.error.empty())
          << entry.name << ": " << cell.error;
    }
    sweep::Report a;
    a.name = entry.name;
    a.cells = serial;
    sweep::Report b;
    b.name = entry.name;
    b.cells = parallel;
    EXPECT_EQ(a.deterministic_dump(), b.deterministic_dump()) << entry.name;
  }
}

TEST(ScenarioLibrary, HugeTopologyRunsCleanAndDeterministically) {
  // The admission-index scale entry: 80 processors and 240 tasks per cell —
  // far beyond the paper's 5-node runs.  One seed, shortened horizon; the
  // run must stay error-free, exercise real admission traffic, and remain
  // byte-deterministic across thread counts (the incremental index must
  // not introduce any ordering sensitivity).
  const auto entry = scenario::find_grid("huge-topology");
  ASSERT_TRUE(entry.is_ok());
  sweep::Grid grid = entry.value().grid;
  grid.seeds = 1;
  sweep::SweepParams params = entry.value().params;
  params.base.horizon = Duration::seconds(10);
  params.base.drain = Duration::seconds(2);

  sweep::SweepOptions single;
  single.threads = 1;
  sweep::SweepOptions sharded;
  sharded.threads = 2;
  const auto serial = sweep::run_sweep(grid, params, single);
  const auto parallel = sweep::run_sweep(grid, params, sharded);
  ASSERT_EQ(serial.size(), grid.cells().size());
  for (const auto& cell : serial) {
    ASSERT_TRUE(cell.error.empty()) << cell.error;
    EXPECT_GT(cell.accept_ratio, 0.0) << cell.cell.combo;
    EXPECT_LE(cell.accept_ratio, 1.0) << cell.cell.combo;
  }
  sweep::Report a;
  a.name = entry.value().name;
  a.cells = serial;
  sweep::Report b;
  b.name = entry.value().name;
  b.cells = parallel;
  EXPECT_EQ(a.deterministic_dump(), b.deterministic_dump());
}

TEST(ScenarioLibrary, FindGridReportsKnownNames) {
  EXPECT_TRUE(scenario::find_grid("bursty").is_ok());
  EXPECT_TRUE(scenario::find_grid("drain-storm").is_ok());
  EXPECT_TRUE(scenario::find_grid("long-horizon").is_ok());
  EXPECT_TRUE(scenario::find_grid("huge-topology").is_ok());
  const auto missing = scenario::find_grid("fig7");
  EXPECT_FALSE(missing.is_ok());
  EXPECT_NE(missing.message().find("fig5"), std::string::npos);
  EXPECT_GE(scenario::library_names().size(), 7u);
}

TEST(ScenarioLibrary, DrainStormCellsApplyTheirScript) {
  const auto entry = scenario::find_grid("drain-storm");
  ASSERT_TRUE(entry.is_ok());
  sweep::Grid grid = entry.value().grid;
  grid.seeds = 1;
  sweep::SweepParams params = entry.value().params;
  params.base.horizon = Duration::seconds(10);
  params.base.drain = Duration::seconds(5);
  const auto results = sweep::run_sweep(grid, params, {});
  bool saw_storm = false;
  for (const auto& cell : results) {
    ASSERT_TRUE(cell.error.empty()) << cell.error;
    if (cell.cell.variant == "storm") {
      saw_storm = true;
      EXPECT_GE(cell.reconfig_applied + cell.reconfig_rejected, 1u);
    } else {
      EXPECT_EQ(cell.reconfig_applied, 0u);
    }
  }
  EXPECT_TRUE(saw_storm);
}

}  // namespace
}  // namespace rtcm
