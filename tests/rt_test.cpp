#include <gtest/gtest.h>

#include <thread>

#include "rt/loopback.h"
#include "rt/overhead_harness.h"
#include "rt/stopwatch.h"

namespace rtcm::rt {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double us = sw.elapsed_us();
  EXPECT_GE(us, 4000.0);
  EXPECT_LT(us, 500000.0);  // sanity upper bound
  EXPECT_GE(sw.elapsed(), Duration::milliseconds(4));
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  sw.restart();
  EXPECT_LT(sw.elapsed_us(), 3000.0);
}

TEST(StopwatchTest, TimeCallMeasuresClosure) {
  const double us = time_call_us(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); });
  EXPECT_GE(us, 1500.0);
}

TEST(LoopbackTest, ProducesPlausibleDelays) {
  const auto result = measure_loopback_delay(200);
  ASSERT_TRUE(result.is_ok()) << result.message();
  EXPECT_EQ(result.value().one_way_us.count(), 200u);
  EXPECT_GT(result.value().mean_us(), 0.0);
  EXPECT_GE(result.value().max_us(), result.value().mean_us());
  // A kernel-mediated round trip on loopback is far below the paper's
  // 100 Mbps-Ethernet 322 us, but must be a real nonzero cost.
  EXPECT_LT(result.value().mean_us(), 10000.0);
}

TEST(OverheadHarnessTest, AllOperationsMeasured) {
  OverheadParams params;
  params.iterations = 50;  // keep the test fast
  const OverheadReport report = measure_overheads(params);
  EXPECT_EQ(report.op1_hold_push.count(), 50u);
  EXPECT_EQ(report.op3_plan.count(), 50u);
  EXPECT_EQ(report.op4_admission_test.count(), 50u);
  EXPECT_EQ(report.op5_release_local.count(), 50u);
  EXPECT_EQ(report.op6_release_remote.count(), 50u);
  EXPECT_EQ(report.op7_ir_report.count(), 50u);
  EXPECT_EQ(report.op8_update_utilization.count(), 50u);
  EXPECT_GT(report.comm_one_way.count(), 0u);

  // Wall-clock costs are positive and sane (< 10 ms per op on any machine).
  for (const Samples* s :
       {&report.op1_hold_push, &report.op3_plan, &report.op4_admission_test,
        &report.op5_release_local, &report.op6_release_remote,
        &report.op7_ir_report, &report.op8_update_utilization}) {
    EXPECT_GE(s->mean(), 0.0);
    EXPECT_LT(s->mean(), 10000.0);
    EXPECT_GE(s->max(), s->mean());
  }
}

TEST(OverheadHarnessTest, Figure8RowsComposeCorrectly) {
  OverheadParams params;
  params.iterations = 20;
  const OverheadReport report = measure_overheads(params);
  const auto rows = report.figure8_rows(322.0, 361.0);
  ASSERT_EQ(rows.size(), 8u);

  EXPECT_EQ(rows[0].name, "AC without LB");
  EXPECT_NEAR(rows[0].mean_us,
              report.op1_hold_push.mean() + 2 * 322.0 +
                  report.op4_admission_test.mean() +
                  report.op5_release_local.mean(),
              1e-9);
  EXPECT_EQ(rows[5].name, "IR (on AC side)");
  EXPECT_NEAR(rows[5].mean_us, report.op8_update_utilization.mean(), 1e-9);
  EXPECT_EQ(rows[6].name, "IR (other part)");
  EXPECT_NEAR(rows[6].mean_us, report.op7_ir_report.mean() + 322.0, 1e-9);
  EXPECT_EQ(rows[7].name, "Communication Delay");
  EXPECT_DOUBLE_EQ(rows[7].mean_us, 322.0);

  // With the paper's communication constant, service delays sit in the
  // paper's regime: under 2 ms ("acceptable for many distributed CPS").
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_GT(rows[i].mean_us, 2 * 322.0);
    EXPECT_LT(rows[i].mean_us, 2000.0) << rows[i].name;
  }

  // Re-allocation rows cost at least as much as their no-re-allocation
  // counterparts (releasing the duplicate includes the same dispatch work).
  EXPECT_NEAR(rows[1].mean_us, rows[3].mean_us, 1e-9);
  EXPECT_NEAR(rows[2].mean_us, rows[4].mean_us, 1e-9);
}

TEST(OverheadHarnessTest, MeasuredRowsUseLoopbackDelay) {
  OverheadParams params;
  params.iterations = 20;
  const OverheadReport report = measure_overheads(params);
  const auto rows = report.figure8_rows_measured();
  ASSERT_EQ(rows.size(), 8u);
  EXPECT_DOUBLE_EQ(rows[7].mean_us, report.comm_one_way.mean());
}

}  // namespace
}  // namespace rtcm::rt
