#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "sim/deferrable_server.h"
#include "sim/network.h"
#include "sim/processor.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "util/rng.h"

namespace rtcm::sim {
namespace {

// --- Simulator ---------------------------------------------------------------

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(Time(300), [&] { order.push_back(3); });
  sim.schedule_at(Time(100), [&] { order.push_back(1); });
  sim.schedule_at(Time(200), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Time(300));
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(SimulatorTest, TiesRunInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(Time(50), [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  Time seen;
  sim.schedule_at(Time(100), [&] {
    sim.schedule_after(Duration(50), [&] { seen = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(seen, Time(150));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventHandle h = sim.schedule_at(Time(10), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));  // second cancel is a no-op
  sim.run_all();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(SimulatorTest, CancelInertHandle) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle()));
}

TEST(SimulatorTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(Time(100), [&] { order.push_back(1); });
  sim.schedule_at(Time(200), [&] { order.push_back(2); });
  sim.schedule_at(Time(300), [&] { order.push_back(3); });
  sim.run_until(Time(200));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), Time(200));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(Time(1000));
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(sim.now(), Time(1000));  // clock advances to the horizon
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(Duration(10), recurse);
  };
  sim.schedule_at(Time(0), recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), Time(40));
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, CancelAfterRunReturnsFalse) {
  Simulator sim;
  int runs = 0;
  const EventHandle h = sim.schedule_at(Time(10), [&] { ++runs; });
  sim.run_all();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(sim.cancel(h));  // the event already ran
}

TEST(SimulatorTest, StaleHandleAfterSlotReuseDoesNotCancelNewEvent) {
  Simulator sim;
  bool a_ran = false;
  bool b_ran = false;
  // Cancel A, freeing its slab slot; B recycles the slot (LIFO free list).
  // A's stale handle carries the old generation and must not touch B.
  const EventHandle a = sim.schedule_at(Time(10), [&] { a_ran = true; });
  EXPECT_TRUE(sim.cancel(a));
  const EventHandle b = sim.schedule_at(Time(20), [&] { b_ran = true; });
  EXPECT_FALSE(sim.cancel(a));  // stale: generation moved on
  sim.run_all();
  EXPECT_FALSE(a_ran);
  EXPECT_TRUE(b_ran);
  EXPECT_FALSE(sim.cancel(b));  // already ran
}

TEST(SimulatorTest, CancelCurrentlyDispatchingEventReturnsFalse) {
  Simulator sim;
  EventHandle h;
  bool checked = false;
  h = sim.schedule_at(Time(10), [&] {
    checked = true;
    EXPECT_FALSE(sim.cancel(h));  // we are already running
  });
  sim.run_all();
  EXPECT_TRUE(checked);
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(SimulatorTest, PendingCountsLiveEventsOnly) {
  Simulator sim;
  const EventHandle a = sim.schedule_at(Time(10), [] {});
  sim.schedule_at(Time(20), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_all();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(SimulatorTest, RescheduleMovesEventKeepingCallback) {
  Simulator sim;
  Time fired;
  EventHandle h = sim.schedule_at(Time(100), [&] { fired = sim.now(); });
  EXPECT_TRUE(sim.reschedule(h, Time(250)));
  sim.run_all();
  EXPECT_EQ(fired, Time(250));
  EXPECT_EQ(sim.executed(), 1u);  // the original instant never fired
}

TEST(SimulatorTest, RescheduleDeadHandleReturnsFalse) {
  Simulator sim;
  EventHandle inert;
  EXPECT_FALSE(sim.reschedule(inert, Time(10)));
  EventHandle h = sim.schedule_at(Time(10), [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.reschedule(h, Time(20)));  // cancelled
  EventHandle ran = sim.schedule_at(Time(30), [] {});
  sim.run_all();
  EXPECT_FALSE(sim.reschedule(ran, Time(40)));  // already ran
}

TEST(SimulatorTest, RescheduleOrdersAsFreshlyScheduled) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(Time(50), [&] { order.push_back(1); });
  EventHandle h = sim.schedule_at(Time(10), [&] { order.push_back(2); });
  // Moving the earlier event onto t=50 puts it AFTER the event already
  // there: rescheduling consumes a fresh sequence number, exactly as the
  // old cancel + schedule_at pair did.
  EXPECT_TRUE(sim.reschedule(h, Time(50)));
  sim.schedule_at(Time(50), [&] { order.push_back(3); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, RescheduledHandleCancelsAtNewInstant) {
  Simulator sim;
  bool ran = false;
  EventHandle h = sim.schedule_at(Time(10), [&] { ran = true; });
  EXPECT_TRUE(sim.reschedule(h, Time(20)));
  EXPECT_TRUE(sim.cancel(h));  // the revalidated handle controls the event
  EXPECT_FALSE(sim.cancel(h));
  sim.run_all();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.executed(), 0u);
}

// --- Processor ---------------------------------------------------------------

TEST(ProcessorTest, RunsSingleItem) {
  Simulator sim;
  Processor cpu(sim, ProcessorId(0));
  bool done = false;
  cpu.submit({1, Priority(1), Duration(100),
              [&](std::uint64_t id) {
                done = true;
                EXPECT_EQ(id, 1u);
              }});
  EXPECT_FALSE(cpu.idle());
  sim.run_all();
  EXPECT_TRUE(done);
  EXPECT_TRUE(cpu.idle());
  EXPECT_EQ(sim.now(), Time(100));
  EXPECT_EQ(cpu.stats().items_completed, 1u);
  EXPECT_EQ(cpu.stats().busy_time, Duration(100));
}

TEST(ProcessorTest, HigherPriorityPreempts) {
  Simulator sim;
  Processor cpu(sim, ProcessorId(0));
  std::vector<std::pair<std::uint64_t, std::int64_t>> completions;
  auto on_complete = [&](std::uint64_t id) {
    completions.push_back({id, sim.now().usec()});
  };
  cpu.submit({1, Priority(5), Duration(100), on_complete});
  // At t=30, a more urgent item arrives and preempts.
  sim.schedule_at(Time(30), [&] {
    cpu.submit({2, Priority(1), Duration(50), on_complete});
  });
  sim.run_all();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0].first, 2u);
  EXPECT_EQ(completions[0].second, 80);   // 30 + 50
  EXPECT_EQ(completions[1].first, 1u);
  EXPECT_EQ(completions[1].second, 150);  // 100 total demand + 50 preemption
  EXPECT_EQ(cpu.stats().preemptions, 1u);
}

TEST(ProcessorTest, EqualPriorityDoesNotPreempt) {
  Simulator sim;
  Processor cpu(sim, ProcessorId(0));
  std::vector<std::uint64_t> order;
  auto on_complete = [&](std::uint64_t id) { order.push_back(id); };
  cpu.submit({1, Priority(3), Duration(100), on_complete});
  sim.schedule_at(Time(10), [&] {
    cpu.submit({2, Priority(3), Duration(10), on_complete});
  });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(cpu.stats().preemptions, 0u);
}

TEST(ProcessorTest, FifoWithinPriorityLevel) {
  Simulator sim;
  Processor cpu(sim, ProcessorId(0));
  std::vector<std::uint64_t> order;
  auto on_complete = [&](std::uint64_t id) { order.push_back(id); };
  cpu.submit({1, Priority(1), Duration(10), on_complete});
  cpu.submit({2, Priority(2), Duration(10), on_complete});
  cpu.submit({3, Priority(2), Duration(10), on_complete});
  cpu.submit({4, Priority(0), Duration(10), on_complete});
  sim.run_all();
  // 1 started immediately (was idle); 4 is most urgent next; 2 and 3 FIFO.
  // But 4 preempts 1 on submission.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{4, 1, 2, 3}));
}

TEST(ProcessorTest, PreemptedItemResumesWithRemainingTime) {
  Simulator sim;
  Processor cpu(sim, ProcessorId(0));
  std::int64_t item1_done = 0;
  cpu.submit({1, Priority(5), Duration(100),
              [&](std::uint64_t) { item1_done = sim.now().usec(); }});
  sim.schedule_at(Time(60), [&] {
    cpu.submit({2, Priority(1), Duration(200), [](std::uint64_t) {}});
  });
  sim.run_all();
  // Item 1 ran 60, was preempted for 200, then finished its remaining 40.
  EXPECT_EQ(item1_done, 300);
}

TEST(ProcessorTest, IdleCallbackFiresOnTransition) {
  Simulator sim;
  Processor cpu(sim, ProcessorId(0));
  int idle_count = 0;
  cpu.set_idle_callback([&] { ++idle_count; });
  cpu.submit({1, Priority(1), Duration(10), nullptr});
  cpu.submit({2, Priority(1), Duration(10), nullptr});
  sim.run_all();
  EXPECT_EQ(idle_count, 1);  // only when the queue fully drains
  cpu.submit({3, Priority(1), Duration(10), nullptr});
  sim.run_all();
  EXPECT_EQ(idle_count, 2);
}

TEST(ProcessorTest, CompletionCallbackCanSubmitNextWork) {
  Simulator sim;
  Processor cpu(sim, ProcessorId(0));
  int idle_count = 0;
  cpu.set_idle_callback([&] { ++idle_count; });
  bool chained = false;
  cpu.submit({1, Priority(1), Duration(10), [&](std::uint64_t) {
                cpu.submit({2, Priority(1), Duration(10),
                            [&](std::uint64_t) { chained = true; }});
              }});
  sim.run_all();
  EXPECT_TRUE(chained);
  EXPECT_EQ(idle_count, 1);  // no idle between chained items
  EXPECT_EQ(sim.now(), Time(20));
}

TEST(ProcessorTest, BusyFraction) {
  Simulator sim;
  Processor cpu(sim, ProcessorId(0));
  cpu.submit({1, Priority(1), Duration(50), nullptr});
  sim.run_all();
  sim.schedule_at(Time(100), [] {});
  sim.run_all();
  EXPECT_NEAR(cpu.busy_fraction(), 0.5, 1e-9);
}

TEST(ProcessorTest, ManyPreemptionsAccounting) {
  Simulator sim;
  Processor cpu(sim, ProcessorId(0));
  std::uint64_t completed = 0;
  auto count = [&](std::uint64_t) { ++completed; };
  cpu.submit({0, Priority(10), Duration(1000), count});
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(Time(i * 100), [&cpu, i, count] {
      cpu.submit({static_cast<std::uint64_t>(i),
                  Priority(10 - i), Duration(20), count});
    });
  }
  sim.run_all();
  EXPECT_EQ(completed, 6u);
  EXPECT_EQ(cpu.stats().preemptions, 5u);
  // Total busy time equals total demand.
  EXPECT_EQ(cpu.stats().busy_time, Duration(1100));
}

// --- Network -----------------------------------------------------------------

TEST(NetworkTest, RemoteLatencyApplied) {
  Simulator sim;
  Network net(sim, std::make_unique<ConstantLatency>(Duration(322)));
  Time delivered;
  net.send(ProcessorId(0), ProcessorId(1), [&] { delivered = sim.now(); });
  sim.run_all();
  EXPECT_EQ(delivered, Time(322));
  EXPECT_EQ(net.stats().messages_sent, 1u);
  EXPECT_EQ(net.stats().remote_messages, 1u);
}

TEST(NetworkTest, LoopbackLatencySeparate) {
  Simulator sim;
  Network net(sim,
              std::make_unique<ConstantLatency>(Duration(322), Duration(5)));
  Time delivered;
  net.send(ProcessorId(2), ProcessorId(2), [&] { delivered = sim.now(); });
  sim.run_all();
  EXPECT_EQ(delivered, Time(5));
  EXPECT_EQ(net.stats().remote_messages, 0u);
}

TEST(NetworkTest, FifoPerLink) {
  Simulator sim;
  Network net(sim, std::make_unique<ConstantLatency>(Duration(100)));
  std::vector<int> order;
  net.send(ProcessorId(0), ProcessorId(1), [&] { order.push_back(1); });
  net.send(ProcessorId(0), ProcessorId(1), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(NetworkTest, PaperConstantValue) {
  EXPECT_EQ(Network::kPaperOneWayDelay, Duration::microseconds(322));
}

TEST(JitterLatencyTest, StaysWithinBounds) {
  UniformJitterLatency model(Duration(300), Duration(100), /*seed=*/7);
  for (int i = 0; i < 1000; ++i) {
    const Duration d = model.latency(ProcessorId(0), ProcessorId(1));
    EXPECT_GE(d, Duration(300));
    EXPECT_LE(d, Duration(400));
  }
}

TEST(JitterLatencyTest, LoopbackUnjittered) {
  UniformJitterLatency model(Duration(300), Duration(100), 7, Duration(5));
  EXPECT_EQ(model.latency(ProcessorId(2), ProcessorId(2)), Duration(5));
}

TEST(JitterLatencyTest, DeterministicPerSeed) {
  UniformJitterLatency a(Duration(300), Duration(100), 42);
  UniformJitterLatency b(Duration(300), Duration(100), 42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.latency(ProcessorId(0), ProcessorId(1)),
              b.latency(ProcessorId(0), ProcessorId(1)));
  }
}

TEST(JitterLatencyTest, ActuallyVaries) {
  UniformJitterLatency model(Duration(300), Duration(100), 9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(model.latency(ProcessorId(0), ProcessorId(1)).usec());
  }
  EXPECT_GT(seen.size(), 20u);
}

TEST(JitterLatencyTest, ZeroJitterIsConstant) {
  UniformJitterLatency model(Duration(300), Duration::zero(), 9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(model.latency(ProcessorId(0), ProcessorId(1)), Duration(300));
  }
}

// --- Trace -------------------------------------------------------------------

TEST(TraceTest, DisabledByDefault) {
  Trace trace;
  trace.record(
      {Time(1), TraceKind::kIdle, ProcessorId(0), TaskId(), JobId(), ""});
  EXPECT_TRUE(trace.records().empty());
}

TEST(TraceTest, RecordsAndFilters) {
  Trace trace;
  trace.enable();
  trace.record({Time(1), TraceKind::kJobArrival, ProcessorId(0), TaskId(1),
                JobId(1), ""});
  trace.record({Time(2), TraceKind::kJobReleased, ProcessorId(0), TaskId(1),
                JobId(1), ""});
  trace.record({Time(3), TraceKind::kJobArrival, ProcessorId(1), TaskId(2),
                JobId(2), "x"});
  EXPECT_EQ(trace.count(TraceKind::kJobArrival), 2u);
  EXPECT_EQ(trace.count(TraceKind::kDeadlineMiss), 0u);
  const auto arrivals = trace.of_kind(TraceKind::kJobArrival);
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1].detail, "x");
  EXPECT_NE(trace.render().find("released"), std::string::npos);
  trace.clear();
  EXPECT_TRUE(trace.records().empty());
}

// --- Determinism property ----------------------------------------------------

TEST(DeterminismTest, SameProgramSameTrace) {
  auto run = [] {
    Simulator sim;
    Processor cpu(sim, ProcessorId(0));
    Network net(sim, std::make_unique<ConstantLatency>(Duration(10)));
    std::vector<std::int64_t> signature;
    for (int i = 0; i < 20; ++i) {
      sim.schedule_at(Time(i * 7), [&, i] {
        cpu.submit({static_cast<std::uint64_t>(i), Priority(i % 3),
                    Duration(5 + i % 4), [&](std::uint64_t id) {
                      signature.push_back(static_cast<std::int64_t>(id) * 1000 +
                                          sim.now().usec() % 1000);
                    }});
      });
    }
    sim.run_all();
    return signature;
  };
  EXPECT_EQ(run(), run());
}

TEST(DeterminismTest, SameRngSeedByteIdenticalTraceRender) {
  // Full sim-layer pipeline — jittered network, preemptive processors, a
  // deferrable server, Rng-driven submissions — rendered to text: the same
  // seed must reproduce the trace byte for byte across two runs.  This is
  // the contract future parallelization work must preserve.
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    Trace trace;
    trace.enable();
    Processor cpu0(sim, ProcessorId(0));
    Processor cpu1(sim, ProcessorId(1));
    Network net(sim,
                std::make_unique<UniformJitterLatency>(Duration(300),
                                                       Duration(120), seed));
    DeferrableServer server(sim, cpu1,
                            {Duration::milliseconds(5),
                             Duration::milliseconds(20), Priority(-1)});
    server.start();

    cpu0.set_idle_callback([&] {
      trace.record({sim.now(), TraceKind::kIdle, ProcessorId(0), TaskId(),
                    JobId(), ""});
    });

    Rng rng(seed);
    for (int i = 0; i < 40; ++i) {
      const Time at(rng.uniform_int(0, 50000));
      const Duration exec(rng.uniform_int(100, 4000));
      const auto priority = Priority(static_cast<std::int32_t>(rng.index(3)));
      const auto id = static_cast<std::uint64_t>(i);
      sim.schedule_at(at, [&, id, exec, priority] {
        // Remote hand-off, then either direct execution on cpu0 or served
        // execution through the deferrable server on cpu1.
        net.send(ProcessorId(0), ProcessorId(1), [&, id, exec, priority] {
          if (id % 3 == 0) {
            server.submit(id, exec, [&](std::uint64_t done) {
              trace.record({sim.now(), TraceKind::kSubjobComplete,
                            ProcessorId(1), TaskId(), JobId(),
                            "served-" + std::to_string(done)});
            });
          } else {
            cpu0.submit({id, priority, exec, [&](std::uint64_t done) {
                           trace.record({sim.now(), TraceKind::kSubjobComplete,
                                         ProcessorId(0), TaskId(), JobId(),
                                         "direct-" + std::to_string(done)});
                         }});
          }
        });
      });
    }
    // run_until, not run_all: the server's replenishment timer reschedules
    // itself forever.
    sim.run_until(Time(Duration::seconds(2).usec()));
    return trace.render();
  };
  const std::string first = run(101);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run(101));       // byte-identical replay
  EXPECT_NE(first, run(102));       // seed actually drives the run
}

}  // namespace
}  // namespace rtcm::sim
