#include <gtest/gtest.h>

#include "ccm/attributes.h"
#include "ccm/component.h"
#include "ccm/container.h"
#include "ccm/factory.h"

namespace rtcm::ccm {
namespace {

// --- AttributeMap ------------------------------------------------------------

TEST(AttributeMapTest, TypedRoundTrip) {
  AttributeMap attrs;
  attrs.set_string("s", "hello");
  attrs.set_int("i", 42);
  attrs.set_double("d", 2.5);
  attrs.set_bool("b", true);
  attrs.set_duration("t", Duration::milliseconds(5));
  EXPECT_EQ(attrs.get_string("s").value(), "hello");
  EXPECT_EQ(attrs.get_int("i").value(), 42);
  EXPECT_DOUBLE_EQ(attrs.get_double("d").value(), 2.5);
  EXPECT_TRUE(attrs.get_bool("b").value());
  EXPECT_EQ(attrs.get_duration("t").value(), Duration(5000));
  EXPECT_EQ(attrs.size(), 5u);
  EXPECT_TRUE(attrs.has("s"));
  EXPECT_FALSE(attrs.has("missing"));
}

TEST(AttributeMapTest, StringCoercion) {
  AttributeMap attrs;
  attrs.set_string("i", "123");
  attrs.set_string("d", "1.5");
  attrs.set_string("b", "yes");
  EXPECT_EQ(attrs.get_int("i").value(), 123);
  EXPECT_DOUBLE_EQ(attrs.get_double("d").value(), 1.5);
  EXPECT_TRUE(attrs.get_bool("b").value());
}

TEST(AttributeMapTest, ToStringCoercion) {
  AttributeMap attrs;
  attrs.set_int("i", 7);
  attrs.set_bool("b", false);
  EXPECT_EQ(attrs.get_string("i").value(), "7");
  EXPECT_EQ(attrs.get_string("b").value(), "false");
}

TEST(AttributeMapTest, ErrorsNameTheAttribute) {
  AttributeMap attrs;
  attrs.set_string("x", "not-a-number");
  const auto r = attrs.get_int("x");
  EXPECT_FALSE(r.is_ok());
  EXPECT_NE(r.message().find("'x'"), std::string::npos);
  const auto missing = attrs.get_string("y");
  EXPECT_FALSE(missing.is_ok());
  EXPECT_NE(missing.message().find("'y'"), std::string::npos);
}

TEST(AttributeMapTest, OrDefaults) {
  AttributeMap attrs;
  attrs.set_string("mode", "PT");
  EXPECT_EQ(attrs.get_string_or("mode", "PJ"), "PT");
  EXPECT_EQ(attrs.get_string_or("other", "PJ"), "PJ");
  EXPECT_EQ(attrs.get_int_or("n", 9), 9);
}

TEST(AttributeMapTest, MergeOverwrites) {
  AttributeMap a;
  a.set_string("k", "old");
  a.set_int("keep", 1);
  AttributeMap b;
  b.set_string("k", "new");
  a.merge(b);
  EXPECT_EQ(a.get_string("k").value(), "new");
  EXPECT_EQ(a.get_int("keep").value(), 1);
}

TEST(AttributeMapTest, NamesSorted) {
  AttributeMap attrs;
  attrs.set_int("b", 1);
  attrs.set_int("a", 2);
  EXPECT_EQ(attrs.names(), (std::vector<std::string>{"a", "b"}));
}

// --- Component lifecycle -----------------------------------------------------

/// Interface + component used to exercise ports.
class Greeter {
 public:
  virtual ~Greeter() = default;
  virtual int greet() = 0;
};

class TestProvider : public Component, public Greeter {
 public:
  TestProvider() : Component("test.Provider") {
    provide_facet("Greet", static_cast<Greeter*>(this));
    declare_event_source("Out", events::EventType::kTrigger);
  }
  int greet() override { return 42; }
};

class TestUser : public Component {
 public:
  TestUser() : Component("test.User") {
    declare_receptacle("Greet", [this](std::any iface) {
      auto* g = std::any_cast<Greeter*>(&iface);
      if (g == nullptr || *g == nullptr) {
        return Status::error("Greet expects a Greeter*");
      }
      greeter_ = *g;
      return Status::ok();
    });
    declare_event_sink("In", events::EventType::kTrigger);
  }

  Greeter* greeter_ = nullptr;
  int configure_calls = 0;
  int activate_calls = 0;
  int passivate_calls = 0;

 protected:
  Status on_configure(const AttributeMap& attrs) override {
    ++configure_calls;
    if (attrs.has("fail")) return Status::error("configured to fail");
    return Status::ok();
  }
  Status on_activate() override {
    ++activate_calls;
    return Status::ok();
  }
  void on_passivate() override { ++passivate_calls; }
};

struct NodeFixture : ::testing::Test {
  NodeFixture()
      : network(sim, std::make_unique<sim::ConstantLatency>(Duration(10))),
        federation(sim, network),
        cpu(sim, ProcessorId(0)),
        container(ContainerContext{sim, network, federation, cpu, trace,
                                   ProcessorId(0)}) {}

  sim::Simulator sim;
  sim::Trace trace;
  sim::Network network;
  events::FederatedEventChannel federation;
  sim::Processor cpu;
  Container container;
};

TEST_F(NodeFixture, LifecycleHappyPath) {
  auto user = std::make_unique<TestUser>();
  TestUser* raw = user.get();
  EXPECT_EQ(raw->state(), LifecycleState::kCreated);
  AttributeMap attrs;
  attrs.set_int("x", 1);
  EXPECT_TRUE(raw->configure(attrs).is_ok());
  EXPECT_EQ(raw->state(), LifecycleState::kConfigured);
  ASSERT_TRUE(container.install("user", std::move(user)).is_ok());
  EXPECT_EQ(raw->instance_name(), "user");
  EXPECT_TRUE(raw->activate().is_ok());
  EXPECT_EQ(raw->state(), LifecycleState::kActive);
  EXPECT_TRUE(raw->passivate().is_ok());
  EXPECT_EQ(raw->state(), LifecycleState::kPassivated);
  EXPECT_EQ(raw->configure_calls, 1);
  EXPECT_EQ(raw->activate_calls, 1);
  EXPECT_EQ(raw->passivate_calls, 1);
}

TEST_F(NodeFixture, ConfigureFailureReported) {
  TestUser user;
  AttributeMap attrs;
  attrs.set_bool("fail", true);
  const Status s = user.configure(attrs);
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(user.state(), LifecycleState::kCreated);
}

TEST_F(NodeFixture, ActivateRequiresInstallation) {
  TestUser user;
  EXPECT_FALSE(user.activate().is_ok());
}

TEST_F(NodeFixture, DoubleActivationRejected) {
  auto user = std::make_unique<TestUser>();
  TestUser* raw = user.get();
  ASSERT_TRUE(container.install("user", std::move(user)).is_ok());
  EXPECT_TRUE(raw->activate().is_ok());
  EXPECT_FALSE(raw->activate().is_ok());
}

TEST_F(NodeFixture, PassivateRequiresActive) {
  TestUser user;
  EXPECT_FALSE(user.passivate().is_ok());
}

TEST_F(NodeFixture, ReconfigurationMergesAttributes) {
  TestUser user;
  AttributeMap first;
  first.set_string("a", "1");
  ASSERT_TRUE(user.configure(first).is_ok());
  AttributeMap second;
  second.set_string("b", "2");
  ASSERT_TRUE(user.configure(second).is_ok());
  EXPECT_EQ(user.attributes().get_string("a").value(), "1");
  EXPECT_EQ(user.attributes().get_string("b").value(), "2");
}

TEST_F(NodeFixture, FacetReceptacleWiring) {
  auto provider = std::make_unique<TestProvider>();
  auto user = std::make_unique<TestUser>();
  TestProvider* p = provider.get();
  TestUser* u = user.get();
  ASSERT_TRUE(container.install("provider", std::move(provider)).is_ok());
  ASSERT_TRUE(container.install("user", std::move(user)).is_ok());

  std::any facet = p->facet("Greet");
  ASSERT_TRUE(facet.has_value());
  EXPECT_TRUE(u->connect_receptacle("Greet", facet).is_ok());
  ASSERT_NE(u->greeter_, nullptr);
  EXPECT_EQ(u->greeter_->greet(), 42);
}

TEST_F(NodeFixture, UnknownPortsReported) {
  TestProvider provider;
  TestUser user;
  EXPECT_FALSE(provider.facet("Nope").has_value());
  EXPECT_FALSE(user.connect_receptacle("Nope", std::any{}).is_ok());
}

TEST_F(NodeFixture, WrongInterfaceTypeRejected) {
  TestUser user;
  const Status s = user.connect_receptacle("Greet", std::any(std::string("x")));
  EXPECT_FALSE(s.is_ok());
}

TEST_F(NodeFixture, PortIntrospection) {
  TestProvider provider;
  TestUser user;
  EXPECT_EQ(provider.facet_names(), (std::vector<std::string>{"Greet"}));
  EXPECT_EQ(user.receptacle_names(), (std::vector<std::string>{"Greet"}));
  EXPECT_EQ(provider.event_source_names(), (std::vector<std::string>{"Out"}));
  EXPECT_EQ(user.event_sink_names(), (std::vector<std::string>{"In"}));
}

// --- Container ---------------------------------------------------------------

TEST_F(NodeFixture, InstallRejectsDuplicates) {
  ASSERT_TRUE(container.install("x", std::make_unique<TestUser>()).is_ok());
  EXPECT_FALSE(container.install("x", std::make_unique<TestUser>()).is_ok());
  EXPECT_EQ(container.size(), 1u);
}

TEST_F(NodeFixture, InstallRejectsNullAndEmptyName) {
  EXPECT_FALSE(container.install("x", nullptr).is_ok());
  EXPECT_FALSE(container.install("", std::make_unique<TestUser>()).is_ok());
}

TEST_F(NodeFixture, FindTyped) {
  ASSERT_TRUE(container.install("u", std::make_unique<TestUser>()).is_ok());
  EXPECT_NE(container.find("u"), nullptr);
  EXPECT_EQ(container.find("v"), nullptr);
  EXPECT_NE(container.find_as<TestUser>("u"), nullptr);
  EXPECT_EQ(container.find_as<TestProvider>("u"), nullptr);
}

TEST_F(NodeFixture, ActivateAllAndPassivateAll) {
  auto u1 = std::make_unique<TestUser>();
  auto u2 = std::make_unique<TestUser>();
  TestUser* r1 = u1.get();
  TestUser* r2 = u2.get();
  ASSERT_TRUE(container.install("u1", std::move(u1)).is_ok());
  ASSERT_TRUE(container.install("u2", std::move(u2)).is_ok());
  EXPECT_TRUE(container.activate_all().is_ok());
  EXPECT_EQ(r1->state(), LifecycleState::kActive);
  EXPECT_EQ(r2->state(), LifecycleState::kActive);
  EXPECT_TRUE(container.passivate_all().is_ok());
  EXPECT_EQ(r1->state(), LifecycleState::kPassivated);
  EXPECT_EQ(r2->state(), LifecycleState::kPassivated);
}

TEST_F(NodeFixture, ContextExposesProcessor) {
  auto u = std::make_unique<TestUser>();
  TestUser* raw = u.get();
  ASSERT_TRUE(container.install("u", std::move(u)).is_ok());
  EXPECT_EQ(raw->context().processor, ProcessorId(0));
  EXPECT_EQ(&raw->context().local_channel(),
            &federation.channel(ProcessorId(0)));
}

// --- Factory -----------------------------------------------------------------

TEST(FactoryTest, RegisterAndCreate) {
  ComponentFactory factory;
  EXPECT_TRUE(factory
                  .register_type("test.User",
                                 [](ProcessorId) {
                                   return std::make_unique<TestUser>();
                                 })
                  .is_ok());
  EXPECT_TRUE(factory.knows("test.User"));
  EXPECT_FALSE(factory.knows("test.Unknown"));
  auto created = factory.create("test.User", ProcessorId(1));
  ASSERT_TRUE(created.is_ok());
  EXPECT_EQ(created.value()->type_name(), "test.User");
}

TEST(FactoryTest, DuplicateRegistrationRejected) {
  ComponentFactory factory;
  auto creator = [](ProcessorId) { return std::make_unique<TestUser>(); };
  EXPECT_TRUE(factory.register_type("t", creator).is_ok());
  EXPECT_FALSE(factory.register_type("t", creator).is_ok());
}

TEST(FactoryTest, BadRegistrations) {
  ComponentFactory factory;
  EXPECT_FALSE(factory.register_type("", [](ProcessorId) {
    return std::make_unique<TestUser>();
  }).is_ok());
  EXPECT_FALSE(factory.register_type("x", nullptr).is_ok());
}

TEST(FactoryTest, UnknownTypeFails) {
  ComponentFactory factory;
  const auto r = factory.create("nope", ProcessorId(0));
  EXPECT_FALSE(r.is_ok());
  EXPECT_NE(r.message().find("nope"), std::string::npos);
}

TEST(FactoryTest, NullCreatorResultReported) {
  ComponentFactory factory;
  ASSERT_TRUE(
      factory.register_type("null", [](ProcessorId) { return nullptr; })
          .is_ok());
  EXPECT_FALSE(factory.create("null", ProcessorId(0)).is_ok());
}

TEST(FactoryTest, TypeNames) {
  ComponentFactory factory;
  (void)factory.register_type("b", [](ProcessorId) {
    return std::make_unique<TestUser>();
  });
  (void)factory.register_type("a", [](ProcessorId) {
    return std::make_unique<TestUser>();
  });
  EXPECT_EQ(factory.type_names(), (std::vector<std::string>{"a", "b"}));
}

TEST(LifecycleStateTest, Names) {
  EXPECT_STREQ(to_string(LifecycleState::kCreated), "Created");
  EXPECT_STREQ(to_string(LifecycleState::kConfigured), "Configured");
  EXPECT_STREQ(to_string(LifecycleState::kActive), "Active");
  EXPECT_STREQ(to_string(LifecycleState::kPassivated), "Passivated");
}

}  // namespace
}  // namespace rtcm::ccm
