#include <gtest/gtest.h>

#include "sched/task.h"
#include "test_helpers.h"

namespace rtcm::sched {
namespace {

using rtcm::testing::make_aperiodic;
using rtcm::testing::make_periodic;

TEST(SubtaskSpecTest, CandidatesIncludePrimaryFirst) {
  SubtaskSpec st;
  st.primary = ProcessorId(2);
  st.replicas = {ProcessorId(4), ProcessorId(1)};
  const auto candidates = st.candidates();
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0], ProcessorId(2));
  EXPECT_EQ(candidates[1], ProcessorId(4));
  EXPECT_EQ(candidates[2], ProcessorId(1));
}

TEST(TaskSpecTest, UtilizationIsExecOverDeadline) {
  const auto t = make_periodic(0, Duration::milliseconds(100),
                               {{0, 20000}, {1, 30000}});
  EXPECT_DOUBLE_EQ(t.subtask_utilization(0), 0.2);
  EXPECT_DOUBLE_EQ(t.subtask_utilization(1), 0.3);
  EXPECT_DOUBLE_EQ(t.total_utilization(), 0.5);
  EXPECT_EQ(t.stage_count(), 2u);
}

TEST(TaskSetTest, AddAndFind) {
  TaskSet set;
  EXPECT_TRUE(
      set.add(make_periodic(0, Duration::seconds(1), {{0, 1000}})).is_ok());
  EXPECT_TRUE(
      set.add(make_aperiodic(1, Duration::seconds(2), {{1, 1000}})).is_ok());
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.periodic_count(), 1u);
  EXPECT_EQ(set.aperiodic_count(), 1u);
  ASSERT_NE(set.find(TaskId(1)), nullptr);
  EXPECT_EQ(set.find(TaskId(1))->kind, TaskKind::kAperiodic);
  EXPECT_EQ(set.find(TaskId(9)), nullptr);
}

TEST(TaskSetTest, RejectsDuplicateIds) {
  TaskSet set;
  EXPECT_TRUE(
      set.add(make_periodic(0, Duration::seconds(1), {{0, 1000}})).is_ok());
  const Status s = set.add(make_periodic(0, Duration::seconds(1), {{1, 1000}}));
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("duplicate"), std::string::npos);
  EXPECT_EQ(set.size(), 1u);
}

TEST(TaskSetTest, ValidationRejectsNonPositiveDeadline) {
  auto t = make_periodic(0, Duration::seconds(1), {{0, 1000}});
  t.deadline = Duration::zero();
  EXPECT_FALSE(TaskSet::validate(t).is_ok());
}

TEST(TaskSetTest, ValidationRejectsPeriodicWithoutPeriod) {
  auto t = make_periodic(0, Duration::seconds(1), {{0, 1000}});
  t.period = Duration::zero();
  EXPECT_FALSE(TaskSet::validate(t).is_ok());
}

TEST(TaskSetTest, ValidationRejectsEmptySubtasks) {
  auto t = make_periodic(0, Duration::seconds(1), {{0, 1000}});
  t.subtasks.clear();
  EXPECT_FALSE(TaskSet::validate(t).is_ok());
}

TEST(TaskSetTest, ValidationRejectsZeroExecution) {
  auto t = make_periodic(0, Duration::seconds(1), {{0, 1000}});
  t.subtasks[0].execution = Duration::zero();
  EXPECT_FALSE(TaskSet::validate(t).is_ok());
}

TEST(TaskSetTest, ValidationRejectsExecutionBeyondDeadline) {
  auto t = make_periodic(0, Duration::milliseconds(10), {{0, 20000}});
  EXPECT_FALSE(TaskSet::validate(t).is_ok());
}

TEST(TaskSetTest, ValidationRejectsInvalidPrimary) {
  auto t = make_periodic(0, Duration::seconds(1), {{0, 1000}});
  t.subtasks[0].primary = ProcessorId();
  EXPECT_FALSE(TaskSet::validate(t).is_ok());
}

TEST(TaskSetTest, ValidationRejectsReplicaEqualToPrimary) {
  auto t = make_periodic(0, Duration::seconds(1), {{0, 1000, {0}}});
  EXPECT_FALSE(TaskSet::validate(t).is_ok());
}

TEST(TaskSetTest, ValidationRejectsDuplicateReplicas) {
  auto t = make_periodic(0, Duration::seconds(1), {{0, 1000, {1, 1}}});
  EXPECT_FALSE(TaskSet::validate(t).is_ok());
}

TEST(TaskSetTest, ValidationRejectsInvalidId) {
  auto t = make_periodic(0, Duration::seconds(1), {{0, 1000}});
  t.id = TaskId();
  EXPECT_FALSE(TaskSet::validate(t).is_ok());
}

TEST(TaskSetTest, ProcessorsCoverPrimariesAndReplicas) {
  TaskSet set;
  ASSERT_TRUE(set.add(make_periodic(0, Duration::seconds(1), {{0, 1000, {3}}}))
                  .is_ok());
  ASSERT_TRUE(
      set.add(make_aperiodic(1, Duration::seconds(1), {{2, 1000}})).is_ok());
  const auto procs = set.processors();
  ASSERT_EQ(procs.size(), 3u);
  EXPECT_EQ(procs[0], ProcessorId(0));
  EXPECT_EQ(procs[1], ProcessorId(2));
  EXPECT_EQ(procs[2], ProcessorId(3));
}

TEST(TaskKindTest, ToString) {
  EXPECT_STREQ(to_string(TaskKind::kPeriodic), "periodic");
  EXPECT_STREQ(to_string(TaskKind::kAperiodic), "aperiodic");
}

}  // namespace
}  // namespace rtcm::sched
