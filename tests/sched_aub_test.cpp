#include <gtest/gtest.h>

#include <cmath>

#include "sched/analysis.h"
#include "sched/aub.h"
#include "sched/utilization_ledger.h"
#include "test_helpers.h"

namespace rtcm::sched {
namespace {

using rtcm::testing::make_aperiodic;
using rtcm::testing::make_periodic;

// --- UtilizationLedger -------------------------------------------------------

TEST(LedgerTest, AddAndTotal) {
  UtilizationLedger ledger;
  const auto a = ledger.add(ProcessorId(0), 0.3);
  (void)ledger.add(ProcessorId(0), 0.2);
  (void)ledger.add(ProcessorId(1), 0.4);
  EXPECT_DOUBLE_EQ(ledger.total(ProcessorId(0)), 0.5);
  EXPECT_DOUBLE_EQ(ledger.total(ProcessorId(1)), 0.4);
  EXPECT_DOUBLE_EQ(ledger.total(ProcessorId(9)), 0.0);
  EXPECT_NEAR(ledger.total_all(), 0.9, 1e-12);
  EXPECT_EQ(ledger.live(), 3u);
  EXPECT_TRUE(ledger.remove(a));
  EXPECT_NEAR(ledger.total(ProcessorId(0)), 0.2, 1e-12);
}

TEST(LedgerTest, RemoveIsIdempotent) {
  UtilizationLedger ledger;
  const auto id = ledger.add(ProcessorId(0), 0.5);
  EXPECT_TRUE(ledger.remove(id));
  EXPECT_FALSE(ledger.remove(id));
  EXPECT_FALSE(ledger.remove(ContributionId()));
  EXPECT_DOUBLE_EQ(ledger.total(ProcessorId(0)), 0.0);
}

TEST(LedgerTest, TotalsNeverGoNegative) {
  UtilizationLedger ledger;
  // Accumulated floating-point drift could push a total slightly below
  // zero; the ledger clamps.
  std::vector<ContributionId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(ledger.add(ProcessorId(0), 0.1 / 3.0));
  }
  for (const auto id : ids) EXPECT_TRUE(ledger.remove(id));
  EXPECT_GE(ledger.total(ProcessorId(0)), 0.0);
  EXPECT_LT(ledger.total(ProcessorId(0)), 1e-9);
}

TEST(LedgerTest, DrainedProcessorTotalIsExactlyZero) {
  UtilizationLedger ledger;
  // Interleaved adds/removes with drift-prone amounts: once the last live
  // contribution on a processor goes away, the total must snap to exactly
  // zero, not a residue — admission tests and quiescence checks compare
  // against it.
  std::vector<ContributionId> ids;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      ids.push_back(ledger.add(ProcessorId(0), (i + 1) / 7.0 / 300.0));
    }
    for (const auto id : ids) EXPECT_TRUE(ledger.remove(id));
    ids.clear();
    EXPECT_DOUBLE_EQ(ledger.total(ProcessorId(0)), 0.0);
    EXPECT_DOUBLE_EQ(ledger.total_all(), 0.0);
  }
  // A survivor on another processor is unaffected by the snap.
  const auto keep = ledger.add(ProcessorId(1), 0.25);
  const auto gone = ledger.add(ProcessorId(1), 0.5);
  EXPECT_TRUE(ledger.remove(gone));
  EXPECT_NEAR(ledger.total(ProcessorId(1)), 0.25, 1e-12);
  EXPECT_TRUE(ledger.remove(keep));
  EXPECT_DOUBLE_EQ(ledger.total(ProcessorId(1)), 0.0);
}

TEST(LedgerTest, MidFlightRemovalKeepsResidualTotal) {
  UtilizationLedger ledger;
  // Removing a contribution while others stay live must leave the exact
  // residual — the exact-zero snap applies only when the *last* live
  // contribution on the processor goes away.  (A snap-to-zero here would
  // erase live utilization and let unsound admissions through.)
  const auto small = ledger.add(ProcessorId(0), 0.3);
  const auto large = ledger.add(ProcessorId(0), 0.4);
  EXPECT_TRUE(ledger.remove(large));
  EXPECT_NEAR(ledger.total(ProcessorId(0)), 0.3, 1e-12);
  EXPECT_GT(ledger.total(ProcessorId(0)), 0.0);
  EXPECT_EQ(ledger.live(), 1u);
  EXPECT_TRUE(ledger.remove(small));
  EXPECT_DOUBLE_EQ(ledger.total(ProcessorId(0)), 0.0);
}

TEST(LedgerTest, ProcessorsListsNonZero) {
  UtilizationLedger ledger;
  (void)ledger.add(ProcessorId(3), 0.1);
  const auto a = ledger.add(ProcessorId(1), 0.1);
  EXPECT_TRUE(ledger.remove(a));
  const auto procs = ledger.processors();
  ASSERT_EQ(procs.size(), 1u);
  EXPECT_EQ(procs[0], ProcessorId(3));
}

TEST(LedgerTest, ProcessorsOrderIsSorted) {
  // processors() is part of the determinism contract: callers iterate it to
  // place work and emit traces, so its order must be a function of the
  // loaded set alone — ascending id — never of insertion or removal order.
  UtilizationLedger ledger;
  const auto a = ledger.add(ProcessorId(9), 0.1);
  (void)ledger.add(ProcessorId(2), 0.1);
  (void)ledger.add(ProcessorId(7), 0.1);
  (void)ledger.add(ProcessorId(0), 0.1);
  EXPECT_TRUE(ledger.remove(a));
  (void)ledger.add(ProcessorId(9), 0.1);  // re-added after removal
  const std::vector<ProcessorId> expected = {ProcessorId(0), ProcessorId(2),
                                             ProcessorId(7), ProcessorId(9)};
  EXPECT_EQ(ledger.processors(), expected);
}

// --- aub_term ---------------------------------------------------------------

TEST(AubTermTest, KnownValues) {
  EXPECT_DOUBLE_EQ(aub_term(0.0), 0.0);
  // U(1 - U/2)/(1 - U) at U = 0.5: 0.5 * 0.75 / 0.5 = 0.75.
  EXPECT_DOUBLE_EQ(aub_term(0.5), 0.75);
  // At U = 2/3: (2/3)(2/3)/(1/3) = 4/3.
  EXPECT_NEAR(aub_term(2.0 / 3.0), 4.0 / 3.0, 1e-12);
}

TEST(AubTermTest, SaturatedUtilizationYieldsSentinelNotGarbage) {
  // At u >= 1 the formula's denominator (1 - u) is zero or negative; a
  // Release build used to divide through and produce a garbage (negative)
  // LHS that could admit an unschedulable task.  The guard must be a real
  // branch, not an assert.
  EXPECT_EQ(aub_term(1.0), kAubUnsatisfiable);
  EXPECT_EQ(aub_term(1.5), kAubUnsatisfiable);
  EXPECT_EQ(aub_term(100.0), kAubUnsatisfiable);
  EXPECT_GT(aub_term(1.0), 1.0);  // unsatisfiable under Equation (1)
}

TEST(AubTermTest, MonotonicallyIncreasing) {
  double prev = -1;
  for (double u = 0; u < 0.99; u += 0.01) {
    const double t = aub_term(u);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(AubTermTest, SingleProcessorBoundary) {
  // A single-stage task alone on one processor satisfies the bound up to
  // the utilization where term(U) = 1, i.e. U = 2 - sqrt(2) ~ 0.586.
  const double u_star = 2.0 - std::sqrt(2.0);
  EXPECT_NEAR(aub_term(u_star), 1.0, 1e-9);
}

// --- aub_lhs ----------------------------------------------------------------

TEST(AubLhsTest, SumsPerVisit) {
  UtilizationLedger ledger;
  (void)ledger.add(ProcessorId(0), 0.5);
  (void)ledger.add(ProcessorId(1), 0.5);
  const double lhs =
      aub_lhs(ledger, {ProcessorId(0), ProcessorId(1)});
  EXPECT_DOUBLE_EQ(lhs, 1.5);
}

TEST(AubLhsTest, RepeatedProcessorCountsTwice) {
  UtilizationLedger ledger;
  (void)ledger.add(ProcessorId(0), 0.5);
  const double lhs = aub_lhs(ledger, {ProcessorId(0), ProcessorId(0)});
  EXPECT_DOUBLE_EQ(lhs, 1.5);
}

TEST(AubLhsTest, SaturatedProcessorIsUnsatisfiable) {
  UtilizationLedger ledger;
  (void)ledger.add(ProcessorId(0), 1.0);
  EXPECT_GT(aub_lhs(ledger, {ProcessorId(0)}), 1e6);
}

// --- aub_admission_test ------------------------------------------------------

TEST(AdmissionTest, EmptySystemAdmitsLightTask) {
  UtilizationLedger ledger;
  const auto decision = aub_admission_test(
      ledger, TaskId(0), {{ProcessorId(0), 0.3}, {ProcessorId(1), 0.3}}, {});
  EXPECT_TRUE(decision.admitted);
  EXPECT_NEAR(decision.candidate_lhs, 2 * aub_term(0.3), 1e-12);
}

TEST(AdmissionTest, RejectsOverloadedCandidate) {
  UtilizationLedger ledger;
  // Two stages at 0.5 each on distinct processors: 0.75 + 0.75 > 1.
  const auto decision = aub_admission_test(
      ledger, TaskId(0), {{ProcessorId(0), 0.5}, {ProcessorId(1), 0.5}}, {});
  EXPECT_FALSE(decision.admitted);
  EXPECT_FALSE(decision.failed_on_existing);
  EXPECT_EQ(decision.blocking_task, TaskId(0));
}

TEST(AdmissionTest, CandidateOverlayAppliesToOwnTest) {
  UtilizationLedger ledger;
  (void)ledger.add(ProcessorId(0), 0.4);
  // Candidate adds 0.3 on P0 -> 0.7; term(0.7) = 0.7*0.65/0.3 ~ 1.516 > 1.
  const auto decision =
      aub_admission_test(ledger, TaskId(1), {{ProcessorId(0), 0.3}}, {});
  EXPECT_FALSE(decision.admitted);
}

TEST(AdmissionTest, RejectsWhenExistingTaskWouldBreak) {
  UtilizationLedger ledger;
  // Existing task spans P0 and P1 at 0.4 each: lhs = 2 * term(0.4) ~ 1.07?
  // term(0.4) = 0.4*0.8/0.6 = 0.5333 -> 1.067 > 1... choose 0.35 instead:
  // term(0.35) = 0.35*0.825/0.65 = 0.4442 -> lhs 0.888, admissible.
  (void)ledger.add(ProcessorId(0), 0.35);
  (void)ledger.add(ProcessorId(1), 0.35);
  std::vector<TaskFootprint> current = {
      {TaskId(7), {ProcessorId(0), ProcessorId(1)}}};
  // New candidate on P0 alone at 0.25 passes its own test (term(0.6) =
  // 0.6*0.7/0.4 = 1.05 > 1? -> its own lhs fails).  Use 0.1: term(0.45) =
  // 0.45*0.775/0.55 = 0.634 ok; existing task becomes term(0.45)+term(0.35)
  // = 1.078 > 1 -> must be rejected because of the existing task.
  const auto decision =
      aub_admission_test(ledger, TaskId(9), {{ProcessorId(0), 0.1}}, current);
  EXPECT_FALSE(decision.admitted);
  EXPECT_TRUE(decision.failed_on_existing);
  EXPECT_EQ(decision.blocking_task, TaskId(7));
}

TEST(AdmissionTest, AdmitsWhenAllStillSatisfied) {
  UtilizationLedger ledger;
  (void)ledger.add(ProcessorId(0), 0.2);
  (void)ledger.add(ProcessorId(1), 0.2);
  std::vector<TaskFootprint> current = {
      {TaskId(7), {ProcessorId(0), ProcessorId(1)}}};
  const auto decision =
      aub_admission_test(ledger, TaskId(9), {{ProcessorId(0), 0.1}}, current);
  EXPECT_TRUE(decision.admitted);
}

TEST(AdmissionTest, MultiStageCandidateOnSameProcessor) {
  UtilizationLedger ledger;
  // Candidate visits P0 twice at 0.15 each: U = 0.3 on P0 for BOTH stage
  // terms, lhs = 2*term(0.3) ~ 0.73 -> admissible.
  const auto decision = aub_admission_test(
      ledger, TaskId(0), {{ProcessorId(0), 0.15}, {ProcessorId(0), 0.15}}, {});
  EXPECT_TRUE(decision.admitted);
  EXPECT_NEAR(decision.candidate_lhs, 2 * aub_term(0.3), 1e-12);
  // At 0.2 per stage the same shape fails: 2*term(0.4) ~ 1.07 > 1.
  const auto too_heavy = aub_admission_test(
      ledger, TaskId(0), {{ProcessorId(0), 0.2}, {ProcessorId(0), 0.2}}, {});
  EXPECT_FALSE(too_heavy.admitted);
}

TEST(AdmissionTest, BoundaryExactlyOneAdmits) {
  UtilizationLedger ledger;
  // Single stage with term(U) == 1 exactly: U = 2 - sqrt(2).
  const double u_star = 2.0 - std::sqrt(2.0);
  const auto decision =
      aub_admission_test(ledger, TaskId(0), {{ProcessorId(0), u_star}}, {});
  EXPECT_TRUE(decision.admitted);
}

// Property sweep: admission decisions are monotone in background load —
// if a candidate is rejected at background utilization u, it stays rejected
// at any higher utilization.
class AdmissionMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(AdmissionMonotonicityTest, RejectionIsMonotone) {
  const double candidate_u = GetParam();
  bool rejected_before = false;
  for (double bg = 0.0; bg < 0.95; bg += 0.05) {
    UtilizationLedger ledger;
    (void)ledger.add(ProcessorId(0), bg);
    const auto decision = aub_admission_test(
        ledger, TaskId(1), {{ProcessorId(0), candidate_u}}, {});
    if (rejected_before) {
      EXPECT_FALSE(decision.admitted)
          << "candidate " << candidate_u << " re-admitted at bg " << bg;
    }
    if (!decision.admitted) rejected_before = true;
  }
}

INSTANTIATE_TEST_SUITE_P(UtilizationSweep, AdmissionMonotonicityTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.4, 0.5));

// --- analysis ----------------------------------------------------------------

TEST(AnalysisTest, SimultaneousUtilization) {
  TaskSet set;
  ASSERT_TRUE(set.add(make_periodic(0, Duration::milliseconds(100),
                                    {{0, 30000}, {1, 20000}}))
                  .is_ok());
  ASSERT_TRUE(set.add(make_aperiodic(1, Duration::milliseconds(100),
                                     {{0, 10000}}))
                  .is_ok());
  const auto utils = simultaneous_utilization(set);
  EXPECT_NEAR(utils.at(ProcessorId(0)), 0.4, 1e-12);
  EXPECT_NEAR(utils.at(ProcessorId(1)), 0.2, 1e-12);
  EXPECT_NEAR(peak_simultaneous_utilization(set), 0.4, 1e-12);
}

TEST(AnalysisTest, FeasibilityReport) {
  TaskSet feasible;
  ASSERT_TRUE(feasible
                  .add(make_periodic(0, Duration::milliseconds(100),
                                     {{0, 20000}, {1, 20000}}))
                  .is_ok());
  const auto ok_report = analyze_feasibility(feasible);
  EXPECT_TRUE(ok_report.feasible);
  ASSERT_EQ(ok_report.lhs.size(), 1u);
  EXPECT_NEAR(ok_report.lhs[0], 2 * aub_term(0.2), 1e-12);

  TaskSet infeasible;
  ASSERT_TRUE(infeasible
                  .add(make_periodic(0, Duration::milliseconds(100),
                                     {{0, 50000}, {1, 50000}}))
                  .is_ok());
  const auto bad_report = analyze_feasibility(infeasible);
  EXPECT_FALSE(bad_report.feasible);
  EXPECT_EQ(bad_report.first_violation, TaskId(0));
}

TEST(AnalysisTest, PrimaryFootprint) {
  const auto t =
      make_periodic(3, Duration::seconds(1), {{2, 1000}, {0, 1000}, {2, 1000}});
  const auto fp = primary_footprint(t);
  EXPECT_EQ(fp.task, TaskId(3));
  ASSERT_EQ(fp.processors.size(), 3u);
  EXPECT_EQ(fp.processors[0], ProcessorId(2));
  EXPECT_EQ(fp.processors[1], ProcessorId(0));
  EXPECT_EQ(fp.processors[2], ProcessorId(2));
}

}  // namespace
}  // namespace rtcm::sched
